(* The live fault-event recovery engine (Optim.Recover) and the fault
   schedules that drive it (Noc.Fault.Schedule).

   Contract layers: schedules drawn from a seeded chooser are
   reproducible and prefix-nested; every [step] report's [eval] is
   bit-identical to a from-scratch rescore of the live solution under the
   stepped fault (the differential oracle), on BOTH delta backends with
   identical work counters; the escalation ladder never crashes — a
   region cut sheds with a typed [Disconnected] reason, a zero budget
   sheds [Budget_exhausted], structural overload sheds
   [Infeasible_overload] — and restores readmit what was shed; and the
   figrec campaign stays byte-identical across worker counts, delta
   backends, and a kill-and-resume through the checkpoint sidecar. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let km = Power.Model.kim_horowitz
let bits = Int64.bits_of_float

let check_bits msg a b =
  Alcotest.(check int64) (msg ^ " (bit-identical)") (bits a) (bits b)

let coord row col = Noc.Coord.make ~row ~col
let link r1 c1 r2 c2 = Noc.Mesh.link ~src:(coord r1 c1) ~dst:(coord r2 c2)

let comm id r c r' c' rate =
  Traffic.Communication.make ~id ~src:(coord r c) ~snk:(coord r' c') ~rate

let solution_respects fault s =
  List.for_all
    (fun (route : Routing.Solution.route) ->
      List.for_all (fun (p, _) -> Noc.Fault.path_usable fault p) route.paths
      && List.for_all
           (fun (w, _) -> Noc.Fault.walk_usable fault w)
           route.detours)
    (Routing.Solution.routes s)

let mixed_instance ?(p = 6) ?(n = 10) seed =
  let mesh = Noc.Mesh.square p in
  let rng = Traffic.Rng.create seed in
  let comms =
    Traffic.Workload.uniform rng mesh ~n ~weight:Traffic.Workload.mixed
  in
  (mesh, rng, comms)

let check_reports_bit_equal tag (a : Routing.Evaluate.report)
    (b : Routing.Evaluate.report) =
  check_bool (tag ^ ": feasible") a.Routing.Evaluate.feasible
    b.Routing.Evaluate.feasible;
  check_bits (tag ^ ": total power") a.total_power b.total_power;
  check_bits (tag ^ ": static power") a.static_power b.static_power;
  check_bits (tag ^ ": dynamic power") a.dynamic_power b.dynamic_power;
  check_int (tag ^ ": active links") a.active_links b.active_links;
  check_bits (tag ^ ": max load") a.max_load b.max_load;
  check_int (tag ^ ": detour hops") a.detour_hops b.detour_hops;
  check_bool (tag ^ ": overloaded lists") true (a.overloaded = b.overloaded)

(* ------------------------------------------------------------------ *)
(* Schedules: deterministic, prefix-nested, always-valid targets *)

let draw_schedule ?(p = 5) seed events =
  let rng = Traffic.Rng.create seed in
  Noc.Fault.Schedule.random
    ~choose:(Traffic.Rng.int rng)
    ~events (Noc.Mesh.square p)

let prop_schedule_deterministic_and_nested =
  QCheck.Test.make
    ~name:"schedules are a pure function of the chooser and prefix-nested"
    ~count:50
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 24))
    (fun (seed, n) ->
      let a = draw_schedule seed n and b = draw_schedule seed n in
      let longer = draw_schedule seed (n + 7) in
      Noc.Fault.Schedule.events a = Noc.Fault.Schedule.events b
      && Noc.Fault.Schedule.length a = n
      && (let le = Noc.Fault.Schedule.events longer in
          List.filteri (fun i _ -> i < n) le = Noc.Fault.Schedule.events a))

let prop_schedule_targets_always_valid =
  (* Tracking the evolving scenario during generation promises that kills
     hit alive edges and restores hit broken ones; replaying the schedule
     must therefore never raise, and every restore must actually revive
     something (factor goes 0 -> 1 or stays 1 only if weights forced a
     fallback kill, which random never emits as Restore). *)
  QCheck.Test.make ~name:"random schedules replay without error" ~count:50
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 32))
    (fun (seed, n) ->
      let s = draw_schedule seed n in
      let states = Noc.Fault.Schedule.play s in
      List.length states = n
      &&
      let mesh = Noc.Fault.Schedule.mesh s in
      List.for_all2
        (fun e f ->
          (* Whatever the event touched is inside the mesh. *)
          List.for_all
            (fun l -> Noc.Fault.factor_link f l >= 0.)
            (Noc.Fault.Schedule.touched mesh e))
        (Noc.Fault.Schedule.events s)
        states)

let test_schedule_apply_semantics () =
  let m3 = Noc.Mesh.square 3 in
  let healthy = Noc.Fault.healthy m3 in
  let l = link 1 1 1 2 in
  let open Noc.Fault.Schedule in
  let f = apply healthy (Kill_link l) in
  check_bool "kill" false (Noc.Fault.usable f l);
  let f = apply f (Restore l) in
  check_bool "restore revives both directions" true
    (Noc.Fault.usable f l && Noc.Fault.usable f (link 1 2 1 1));
  check_bool "restored scenario is trivial again" true
    (Noc.Fault.is_trivial f);
  let f = apply healthy (Degrade_link (l, 0.25)) in
  check_bool "degrade" true (Noc.Fault.factor_link f l = 0.25);
  let f = apply healthy (Kill_router (coord 2 2)) in
  check_int "router kill: four incident edges" 4 (Noc.Fault.num_dead f);
  let f = apply healthy (Kill_region { a = coord 1 1; b = coord 2 2 }) in
  check_bool "region cut disconnects the corner" false (Noc.Fault.connected f);
  let sched = make m3 [ Kill_link l; Degrade_link (link 2 1 2 2, 0.5) ] in
  check_int "length" 2 (length sched);
  let final = final sched in
  check_bool "final folds every event" true
    ((not (Noc.Fault.usable final l))
    && Noc.Fault.factor_link final (link 2 1 2 2) = 0.5);
  check_int "play yields one state per event" 2 (List.length (play sched));
  check_bool "touched covers both directions" true
    (let t = touched m3 (Kill_link l) in
     List.mem l t && List.mem (link 1 2 1 1) t);
  check_bool "negative event count rejected" true
    (match
       draw_schedule 1 (-1)
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* The per-step differential oracle *)

let routed seed =
  (* A Best-routable mixed instance, or None when every heuristic fails
     (dense mixed workloads sometimes defeat all single-path policies). *)
  let mesh, rng, comms = mixed_instance ~p:6 ~n:8 seed in
  match Routing.Best.route km mesh comms with
  | Some (o : Routing.Best.outcome) -> Some (mesh, rng, o.solution)
  | None -> None

let prop_step_eval_is_full_rescore =
  QCheck.Test.make
    ~name:"every step report bit-matches a from-scratch rescore" ~count:25
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 10))
    (fun (seed, events) ->
      match routed seed with
      | None -> true
      | Some (mesh, rng, solution) ->
          let schedule =
            Noc.Fault.Schedule.random
              ~choose:(Traffic.Rng.int rng)
              ~events mesh
          in
          let t = Optim.Recover.create km solution in
          List.for_all
            (fun e ->
              let r = Optim.Recover.step t e in
              let fault = Optim.Recover.fault t in
              let live = Optim.Recover.solution t in
              let rescore =
                Routing.Evaluate.of_loads km
                  (Routing.Solution.loads ~fault live)
              in
              bits r.Optim.Recover.eval.Routing.Evaluate.total_power
              = bits rescore.Routing.Evaluate.total_power
              && r.eval.feasible = rescore.feasible
              && bits r.power_after = bits r.eval.total_power
              && solution_respects fault live
              && r.rung >= 1 && r.rung <= 5
              && r.live = List.length (Routing.Solution.routes live))
            (Noc.Fault.Schedule.events schedule))

let prop_run_never_raises_and_ends_feasible =
  (* Graceful degradation, the headline claim: whatever the schedule
     does, run returns (the empty solution is always feasible) and the
     final state is feasible under the final fault. *)
  QCheck.Test.make ~name:"recovery never crashes and ends feasible"
    ~count:25
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 16))
    (fun (seed, events) ->
      match routed seed with
      | None -> true
      | Some (mesh, rng, solution) ->
          let schedule =
            Noc.Fault.Schedule.random
              ~choose:(Traffic.Rng.int rng)
              ~events mesh
          in
          let t, reports = Optim.Recover.run km solution schedule in
          let fault = Optim.Recover.fault t in
          let live = Optim.Recover.solution t in
          List.length reports = events
          && (Routing.Evaluate.of_loads km
                (Routing.Solution.loads ~fault live))
               .Routing.Evaluate.feasible
          && solution_respects fault live
          && List.length (Routing.Solution.routes live)
             + List.length (Optim.Recover.shed t)
             = 8)

let test_backends_agree_with_equal_work () =
  let with_backend b f =
    Routing.Delta.set_table_backend b;
    Fun.protect ~finally:(fun () -> Routing.Delta.set_table_backend None) f
  in
  let run backend =
    with_backend (Some backend) @@ fun () ->
    match routed 313 with
    | None -> Alcotest.fail "seed 313 must be Best-routable"
    | Some (mesh, rng, solution) ->
        let schedule =
          Noc.Fault.Schedule.random
            ~choose:(Traffic.Rng.int rng)
            ~events:10 mesh
        in
        let before = Routing.Metrics.snapshot () in
        let t, reports = Optim.Recover.run km solution schedule in
        let work =
          Routing.Metrics.diff (Routing.Metrics.snapshot ()) before
        in
        (t, reports, work)
  in
  let tt, rt, wt = run true in
  let tl, rl, wl = run false in
  List.iteri
    (fun i (a : Optim.Recover.report) ->
      let b = List.nth rl i in
      check_reports_bit_equal
        (Printf.sprintf "event %d table vs legacy" i)
        a.Optim.Recover.eval b.Optim.Recover.eval;
      check_int (Printf.sprintf "event %d rung" i) a.rung b.rung;
      check_bool
        (Printf.sprintf "event %d sheds" i)
        true (a.shed_now = b.shed_now))
    rt;
  check_bool "same final shed set" true
    (Optim.Recover.shed tt = Optim.Recover.shed tl);
  check_int "same delta_evals metered" wt.Routing.Metrics.delta_evals
    wl.Routing.Metrics.delta_evals;
  check_int "same recover_events" wt.recover_events wl.recover_events;
  check_int "same recover_sheds" wt.recover_sheds wl.recover_sheds;
  check_int "same recover_rung_max" wt.recover_rung_max wl.recover_rung_max;
  check_int "ten events metered" 10 wt.recover_events;
  check_bool "rung sum counts every event at least once" true
    (wt.recover_rung_max >= 10);
  check_bool "scoring went through the journal" true (wt.delta_evals > 0)

(* ------------------------------------------------------------------ *)
(* The ladder's typed shedding *)

let test_region_cut_sheds_disconnected () =
  (* Comm 0 ends inside the region the event kills: no repair can save
     it, so the ladder sheds it with the [Disconnected] reason at rung 5
     instead of crashing, while comm 1 (confined to row 1) survives. *)
  let mesh = Noc.Mesh.square 4 in
  let comms = [ comm 0 1 1 4 4 500.; comm 1 1 2 1 4 300. ] in
  let solution =
    match Routing.Best.route km mesh comms with
    | Some o -> o.Routing.Best.solution
    | None -> Alcotest.fail "instance must route"
  in
  let schedule =
    Noc.Fault.Schedule.make mesh
      [ Kill_region { a = coord 3 3; b = coord 4 4 } ]
  in
  let t, reports = Optim.Recover.run km solution schedule in
  let r = List.hd reports in
  check_int "rung 5: shedding happened" 5 r.Optim.Recover.rung;
  (match r.shed_now with
  | [ { comm = c; reason = Optim.Recover.Disconnected } ] ->
      check_int "the severed communication" 0 c.Traffic.Communication.id
  | _ -> Alcotest.fail "exactly one Disconnected shed expected");
  check_int "the row-1 communication survives" 1 r.live;
  check_bits "survival ratio" 0.5 r.survival;
  check_bool "what remains is feasible" true
    r.eval.Routing.Evaluate.feasible;
  check_bool "state agrees with the report" true
    (match Optim.Recover.shed t with
    | [ { reason = Optim.Recover.Disconnected; _ } ] -> true
    | _ -> false)

(* A 2x2 instance whose two corner-to-corner communications must split
   across the two L-paths to fit; killing the top edge forces them onto
   the same surviving L, 4000 Mb/s on 3500-capacity links. *)
let overload_after_kill () =
  let mesh = Noc.Mesh.square 2 in
  let comms = [ comm 0 1 1 2 2 2000.; comm 1 1 1 2 2 2000. ] in
  let solution =
    match Routing.Best.route km mesh comms with
    | Some o ->
        check_bool "baseline splits the pair feasibly" true
          o.Routing.Best.report.Routing.Evaluate.feasible;
        o.Routing.Best.solution
    | None -> Alcotest.fail "the split instance must route"
  in
  (mesh, solution)

let test_overload_sheds_infeasible_overload () =
  let mesh, solution = overload_after_kill () in
  let schedule =
    Noc.Fault.Schedule.make mesh [ Kill_link (link 1 1 1 2) ]
  in
  let _, reports = Optim.Recover.run km solution schedule in
  let r = List.hd reports in
  check_int "rung 5 reached" 5 r.Optim.Recover.rung;
  (match r.shed_now with
  | [ { reason = Optim.Recover.Infeasible_overload; _ } ] -> ()
  | _ ->
      Alcotest.fail
        "full-length negotiation cannot help: Infeasible_overload expected");
  check_int "one communication survives" 1 r.live;
  check_bool "the survivor is feasible" true r.eval.Routing.Evaluate.feasible

let test_zero_budget_sheds_budget_exhausted () =
  (* Same structural overload, but with the negotiation budget clamped to
     zero the rungs are truncated and the shed is typed accordingly. *)
  let mesh, solution = overload_after_kill () in
  let schedule =
    Noc.Fault.Schedule.make mesh [ Kill_link (link 1 1 1 2) ]
  in
  let _, reports = Optim.Recover.run ~budget:0 km solution schedule in
  let r = List.hd reports in
  (match r.Optim.Recover.shed_now with
  | [ { reason = Optim.Recover.Budget_exhausted; _ } ] -> ()
  | _ -> Alcotest.fail "truncated ladder must shed Budget_exhausted");
  check_int "no negotiation pass ran" 0 r.passes;
  check_bool "still ends feasible" true r.eval.Routing.Evaluate.feasible

let test_restore_readmits_shed_comm () =
  (* A 1x3 corridor: killing the only link to the sink sheds the
     communication as Disconnected; restoring it must readmit. *)
  let mesh = Noc.Mesh.create ~rows:1 ~cols:3 in
  let c = comm 0 1 1 1 3 100. in
  let solution = Routing.Xy.route mesh [ c ] in
  let l = link 1 2 1 3 in
  let schedule =
    Noc.Fault.Schedule.make mesh [ Kill_link l; Restore l ]
  in
  let t, reports = Optim.Recover.run km solution schedule in
  (match reports with
  | [ r1; r2 ] ->
      check_bool "event 1 sheds Disconnected" true
        (match r1.Optim.Recover.shed_now with
        | [ { reason = Optim.Recover.Disconnected; _ } ] -> true
        | _ -> false);
      check_int "event 1 leaves nothing live" 0 r1.live;
      check_bits "survival hits zero" 0. r1.survival;
      check_bool "empty solution is feasible" true
        r1.eval.Routing.Evaluate.feasible;
      check_bool "event 2 readmits the communication" true
        (match r2.Optim.Recover.readmitted with
        | [ c' ] -> c'.Traffic.Communication.id = 0
        | _ -> false);
      check_int "live again" 1 r2.live;
      check_bits "survival restored" 1. r2.survival
  | _ -> Alcotest.fail "two reports expected");
  check_bool "no residual shed" true (Optim.Recover.shed t = []);
  check_bool "the readmitted route is usable" true
    (solution_respects (Optim.Recover.fault t) (Optim.Recover.solution t))

let test_create_validates () =
  let mesh = Noc.Mesh.square 2 in
  let s = Routing.Xy.route mesh [ comm 0 1 1 2 2 100. ] in
  Alcotest.check_raises "negative budget rejected"
    (Invalid_argument "Recover.create: budget < 0") (fun () ->
      ignore (Optim.Recover.create ~budget:(-1) km s));
  Alcotest.check_raises "negative rung3 cap rejected"
    (Invalid_argument "Recover.create: rung3_iterations < 0") (fun () ->
      ignore (Optim.Recover.create ~rung3_iterations:(-1) km s));
  Alcotest.check_raises "mismatched schedule mesh rejected"
    (Invalid_argument "Recover.run: schedule mesh differs from solution mesh")
    (fun () ->
      ignore
        (Optim.Recover.run km s
           (Noc.Fault.Schedule.make (Noc.Mesh.square 3) [])))

(* ------------------------------------------------------------------ *)
(* Registry-shaped entry and spellings *)

let test_engine_deterministic_and_jobs_free () =
  (* The engine derives its schedule from the workload itself, so two
     calls agree bit for bit with no rng in sight. *)
  let mesh, _, comms = mixed_instance ~p:6 ~n:8 42 in
  let a = Optim.Recover.engine ~events:6 km mesh comms in
  let b = Optim.Recover.engine ~events:6 km mesh comms in
  check_bits "same power"
    (Routing.Evaluate.solution km a).Routing.Evaluate.total_power
    (Routing.Evaluate.solution km b).Routing.Evaluate.total_power;
  check_bool "empty workload survives trivially" true
    (Routing.Solution.routes (Optim.Recover.engine km mesh []) = []);
  check_bool "zero events is the baseline" true
    (Routing.Solution.routes (Optim.Recover.engine ~events:0 km mesh comms)
    <> [])

let test_registry_spellings () =
  let name s = Option.map (fun h -> h.Routing.Heuristic.name) s in
  check_bool "bare rec defaults the event count" true
    (name (Optim.Recover.find "rec") = Some "REC8");
  check_bool "rec12" true (name (Optim.Recover.find "rec12") = Some "REC12");
  check_bool "REC(12)" true
    (name (Optim.Recover.find "REC(12)") = Some "REC12");
  check_bool "rec0 allowed (baseline)" true
    (name (Optim.Recover.find "rec0") = Some "REC0");
  check_bool "recx rejected" true (Optim.Recover.find "recx" = None);
  check_bool "rec-1 rejected" true (Optim.Recover.find "rec-1" = None);
  check_bool "unrelated names rejected" true (Optim.Recover.find "pf8" = None);
  Routing.Heuristic.register Optim.Recover.find;
  check_bool "find_extended resolves rec4" true
    (name (Routing.Heuristic.find_extended "rec4") = Some "REC4");
  check_bool "builtins still resolve first" true
    (name (Routing.Heuristic.find_extended "xy") = Some "XY")

(* ------------------------------------------------------------------ *)
(* End-to-end: the figrec campaign is backend-, jobs- and crash-invariant *)

let small_figrec = { Harness.Figure.figrec with xs = [ 0.; 3. ] }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let with_backend b f =
  Routing.Delta.set_table_backend b;
  Fun.protect ~finally:(fun () -> Routing.Delta.set_table_backend None) f

let campaign backend jobs =
  with_backend (Some backend) @@ fun () ->
  let ckpt = Filename.temp_file "manroute-rec" ".ckpt" in
  let result =
    Harness.Runner.run ~trials:2 ~seed:7 ~jobs ~checkpoint:ckpt small_figrec
  in
  let csv = Harness.Render.csv result in
  let ckpt_bytes = read_file ckpt in
  Sys.remove ckpt;
  (csv, ckpt_bytes)

let test_figrec_campaign_invariant () =
  let csv_t1, ck_t1 = campaign true 1 in
  let csv_l1, ck_l1 = campaign false 1 in
  let csv_t2, ck_t2 = campaign true 2 in
  check_string "csv: table vs legacy, jobs=1" csv_t1 csv_l1;
  check_string "csv: jobs=1 vs jobs=2" csv_t1 csv_t2;
  check_string "checkpoint: table vs legacy, jobs=1" ck_t1 ck_l1;
  check_string "checkpoint: jobs=1 vs jobs=2" ck_t1 ck_t2;
  check_bool "csv has the REC power column" true (contains csv_t1 "REC_power");
  check_bool "csv has the recover_events column" true
    (contains csv_t1 "REC_recover_events");
  check_bool "csv has the recover_sheds column" true
    (contains csv_t1 "REC_recover_sheds");
  check_bool "csv has the recover_rung_max column" true
    (contains csv_t1 "REC_recover_rung_max")

let rows_equal (a : Harness.Runner.result) (b : Harness.Runner.result) =
  List.length a.rows = List.length b.rows
  && List.for_all2
       (fun (ra : Harness.Runner.row) (rb : Harness.Runner.row) ->
         ra.x = rb.x && ra.cells = rb.cells)
       a.rows b.rows

let test_figrec_kill_and_resume () =
  with_backend (Some true) @@ fun () ->
  let path = Filename.temp_file "manroute-rec-resume" ".ckpt" in
  let fresh = Harness.Runner.run ~trials:2 ~seed:7 ~jobs:1 small_figrec in
  ignore
    (Harness.Runner.run ~trials:2 ~seed:7 ~jobs:1 ~checkpoint:path
       small_figrec);
  (* Keep the first completed row, then leave a torn half-written line
     with no newline, as a dying process would. *)
  let ic = open_in path in
  let first_line = input_line ic in
  close_in ic;
  let oc = open_out path in
  output_string oc (first_line ^ "\nrow\tv1\tfigrec\t7\t2\t0x1p+");
  close_out oc;
  let resumed =
    Harness.Runner.run ~trials:2 ~seed:7 ~jobs:2 ~checkpoint:path small_figrec
  in
  check_bool "killed-and-resumed campaign bit-identical" true
    (rows_equal fresh resumed);
  check_string "resumed CSV byte-identical" (Harness.Render.csv fresh)
    (Harness.Render.csv resumed);
  Sys.remove path

let () =
  Alcotest.run "recover"
    [
      ( "schedule",
        [
          QCheck_alcotest.to_alcotest prop_schedule_deterministic_and_nested;
          QCheck_alcotest.to_alcotest prop_schedule_targets_always_valid;
          Alcotest.test_case "apply/final/play/touched semantics" `Quick
            test_schedule_apply_semantics;
        ] );
      ( "oracle",
        [
          QCheck_alcotest.to_alcotest prop_step_eval_is_full_rescore;
          QCheck_alcotest.to_alcotest prop_run_never_raises_and_ends_feasible;
          Alcotest.test_case "delta backends agree, equal work" `Quick
            test_backends_agree_with_equal_work;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "region cut sheds Disconnected" `Quick
            test_region_cut_sheds_disconnected;
          Alcotest.test_case "overload sheds Infeasible_overload" `Quick
            test_overload_sheds_infeasible_overload;
          Alcotest.test_case "zero budget sheds Budget_exhausted" `Quick
            test_zero_budget_sheds_budget_exhausted;
          Alcotest.test_case "restore readmits a shed communication" `Quick
            test_restore_readmits_shed_comm;
          Alcotest.test_case "validation" `Quick test_create_validates;
        ] );
      ( "engine",
        [
          Alcotest.test_case "engine deterministic without an rng" `Quick
            test_engine_deterministic_and_jobs_free;
          Alcotest.test_case "registry spellings" `Quick
            test_registry_spellings;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "figrec campaign backend- and jobs-invariant"
            `Slow test_figrec_campaign_invariant;
          Alcotest.test_case "figrec campaign survives a kill-and-resume"
            `Slow test_figrec_kill_and_resume;
        ] );
    ]
