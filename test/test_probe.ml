(* Differential oracle for the spatial observability probe.

   [Routing.Probe] promises exactness, not approximation: its embedded
   report must bit-match a from-scratch [Routing.Evaluate] of the same
   solution on either [MANROUTE_DELTA] backend; within every carrying
   link the occupant power slices must sum bitwise to the link power;
   and the per-communication attributions must sum bitwise to the
   report's total. The audit artifacts built on top must be byte-equal
   whatever worker count or scorer backend produced them. Golden pins
   hold the ASCII heatmaps of the paper's Fig. 2 example to their exact
   rendering. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let bits = Int64.bits_of_float

let check_bits msg a b =
  Alcotest.(check int64) (msg ^ " (bit-identical)") (bits a) (bits b)

let report_eq (a : Routing.Evaluate.report) (b : Routing.Evaluate.report) =
  a.feasible = b.feasible
  && bits a.total_power = bits b.total_power
  && bits a.static_power = bits b.static_power
  && bits a.dynamic_power = bits b.dynamic_power
  && a.active_links = b.active_links
  && bits a.max_load = bits b.max_load
  && a.detour_hops = b.detour_hops
  && List.length a.overloaded = List.length b.overloaded
  && List.for_all2
       (fun (la, xa) (lb, xb) -> la = lb && bits xa = bits xb)
       a.overloaded b.overloaded

let with_backend b f =
  Routing.Delta.set_table_backend b;
  Fun.protect ~finally:(fun () -> Routing.Delta.set_table_backend None) f

(* ------------------------------------------------------------------ *)
(* Randomized differential oracle *)

let models =
  [|
    Power.Model.kim_horowitz;
    Power.Model.kim_horowitz_continuous;
    Power.Model.theory ();
  |]

let make_fault rng kind mesh =
  match kind with
  | 0 -> None
  | 1 ->
      Some
        (Noc.Fault.random_dead ~choose:(Traffic.Rng.int rng) ~kills:2 mesh)
  | _ ->
      Some (Noc.Fault.random_degraded ~choose:(Traffic.Rng.int rng) ~n:3 mesh)

let instance_gen =
  QCheck.Gen.(
    quad (int_range 0 1_000_000) (int_range 3 6) (int_range 0 2)
      (int_range 0 2))

(* One probe against its ground truth. Every failure is recorded as a
   message so QCheck can show what broke instead of a bare [false]. *)
let probe_invariants ~what ?fault model (sol : Routing.Solution.t) bad =
  let fail fmt = Printf.ksprintf (fun m -> bad := (what ^ ": " ^ m) :: !bad) fmt in
  let p = Routing.Probe.solution ?fault model sol in
  let fresh = Routing.Evaluate.solution ?fault model sol in
  if not (report_eq p.report fresh) then
    fail "probe report differs from Evaluate.solution";
  (* Grid: indexed by link id; slices of a carrying link sum bitwise to
     its power; an overloaded link's infinite power attributes as 0. *)
  Array.iteri
    (fun id (lp : Routing.Probe.link_probe) ->
      if lp.link_id <> id then fail "grid slot %d holds link %d" id lp.link_id;
      if lp.overloaded then
        List.iter
          (fun (o : Routing.Probe.occupant) ->
            if bits o.power <> bits 0. then
              fail "overloaded link %d occupant power <> 0" id)
          lp.occupants
      else if lp.occupants <> [] then begin
        let slices =
          List.fold_left
            (fun acc (o : Routing.Probe.occupant) -> acc +. o.power)
            0. lp.occupants
        in
        if bits slices <> bits lp.link_power then
          fail "link %d slices %h <> link power %h" id slices lp.link_power
      end)
    p.grid;
  (* Attribution: the rows sum bitwise to the grand total, which equals
     the report total (finite part when infeasible). *)
  let row_sum =
    List.fold_left
      (fun acc (c : Routing.Probe.comm_row) -> acc +. c.attributed)
      0. p.comms
  in
  if bits row_sum <> bits p.attributed_total then
    fail "row sum %h <> attributed_total %h" row_sum p.attributed_total;
  let target =
    if p.report.feasible then p.report.total_power
    else p.report.static_power +. p.report.dynamic_power
  in
  if p.comms <> [] && bits p.attributed_total <> bits target then
    fail "attributed_total %h <> target %h" p.attributed_total target;
  (* Blame: one entry per overloaded link, same order, convictions
     consistent both ways. *)
  let overloaded_ids =
    List.map (fun (l, _) -> Noc.Mesh.link_id p.mesh l) p.report.overloaded
  in
  let blame_ids =
    List.map (fun ((lp : Routing.Probe.link_probe), _) -> lp.link_id) p.blame
  in
  if blame_ids <> overloaded_ids then fail "blame order differs from report";
  List.iter
    (fun ((lp : Routing.Probe.link_probe), occupants) ->
      if not lp.overloaded then fail "blamed link %d not overloaded" lp.link_id;
      if occupants = [] then fail "overloaded link %d convicts nobody" lp.link_id)
    p.blame;
  List.iter
    (fun (c : Routing.Probe.comm_row) ->
      List.iter
        (fun id ->
          if not (List.mem id overloaded_ids) then
            fail "comm %d convicted on healthy link %d"
              c.comm.Traffic.Communication.id id)
        c.convicted)
    p.comms;
  (* Grid-only probe of the same loads: bit-matches [Evaluate.of_loads]
     and carries no attribution. *)
  let loads = Routing.Solution.loads ?fault sol in
  let bare = Routing.Probe.of_loads model loads in
  if not (report_eq bare.report (Routing.Evaluate.of_loads model loads)) then
    fail "of_loads probe differs from Evaluate.of_loads";
  if bare.comms <> [] then fail "of_loads probe has comm rows";
  if bits bare.attributed_total <> bits 0. then
    fail "of_loads attributed_total <> 0"

let prop_probe_matches_evaluate =
  QCheck.Test.make
    ~name:
      "probe grid and attribution bit-match Evaluate on both backends"
    ~count:30
    (QCheck.make instance_gen)
    (fun (seed, p, model_idx, fault_kind) ->
      let mesh = Noc.Mesh.square p in
      let model = models.(model_idx) in
      let rng = Traffic.Rng.create seed in
      let fault = make_fault rng fault_kind mesh in
      let comms =
        Traffic.Workload.uniform rng mesh ~n:8
          ~weight:(Traffic.Workload.weight ~lo:300. ~hi:2800.)
      in
      let bad = ref [] in
      List.iter
        (fun (h : Routing.Heuristic.t) ->
          match h.run ?fault model mesh comms with
          | exception Routing.Repair.No_route _ -> ()
          | sol ->
              List.iter
                (fun backend ->
                  with_backend (Some backend) @@ fun () ->
                  let what =
                    Printf.sprintf "%s/%s" h.name
                      (if backend then "table" else "legacy")
                  in
                  probe_invariants ~what ?fault model sol bad)
                [ true; false ])
        Routing.Heuristic.all;
      match !bad with
      | [] -> true
      | msgs -> QCheck.Test.fail_report (String.concat "\n" msgs))

let prop_exact_remainder =
  QCheck.Test.make
    ~name:"exact_remainder: partial +. d = total bitwise" ~count:500
    QCheck.(
      make
        Gen.(
          pair (float_bound_inclusive 1e12) (float_bound_inclusive 1e12)))
    (fun (a, b) ->
      let total = a +. b and partial = a in
      let d = Routing.Probe.exact_remainder ~total ~partial in
      bits (partial +. d) = bits total)

(* ------------------------------------------------------------------ *)
(* Golden pins: the paper's Fig. 2 example (2x2 CMP, BW = 4) *)

let fig2_probe sol = Routing.Probe.solution Theory.Example_fig2.model sol

let check_maps name sol ~load ~power =
  check_string (name ^ " load heatmap") load
    (Harness.Render.heatmap ~capacity:4. (Routing.Solution.loads sol));
  check_string (name ^ " power heatmap") power
    (Harness.Render.power_heatmap (fig2_probe sol))

let test_fig2_heatmap_pins () =
  check_maps "xy"
    (Theory.Example_fig2.xy_routing ())
    ~load:"+-9-+\n.   9\n+-.-+\n" ~power:"+-9-+\n.   9\n+-.-+\n";
  check_maps "1mp"
    (Theory.Example_fig2.best_1mp ())
    ~load:"+-3-+\n7   3\n+-7-+\n" ~power:"+-1-+\n9   1\n+-9-+\n";
  check_maps "2mp"
    (Theory.Example_fig2.best_2mp ())
    ~load:"+-5-+\n5   5\n+-5-+\n" ~power:"+-9-+\n9   9\n+-9-+\n"

let test_fig2_attribution_pins () =
  let xy, mp1, mp2 = Theory.Example_fig2.powers () in
  let check name sol expected =
    let p = fig2_probe sol in
    check_bits (name ^ " total") expected p.report.total_power;
    check_bits
      (name ^ " attribution sums to total")
      p.report.total_power p.attributed_total
  in
  check "xy" (Theory.Example_fig2.xy_routing ()) xy;
  check "1mp" (Theory.Example_fig2.best_1mp ()) mp1;
  check "2mp" (Theory.Example_fig2.best_2mp ()) mp2;
  (* The balanced 2-split: 8 mW follow the unit-rate communication, 24 mW
     the rate-3 one, across two and four links respectively. *)
  match (fig2_probe (Theory.Example_fig2.best_2mp ())).comms with
  | [ c0; c1 ] ->
      check_bits "2mp comm 0 slice" 8. c0.attributed;
      check_bits "2mp comm 1 slice" 24. c1.attributed;
      check_int "2mp comm 0 links" 2 (List.length c0.links);
      check_int "2mp comm 1 links" 4 (List.length c1.links)
  | rows -> Alcotest.failf "expected 2 comm rows, got %d" (List.length rows)

(* ------------------------------------------------------------------ *)
(* Audit selection and artifacts *)

let v bp errored shed = { Harness.Audit.best_power = bp; errored; shed }

let test_select_picks_first_worst_and_all_incidents () =
  let verdicts =
    [|
      v (Some 5.) false false;
      v (Some 9.) false true;
      v None true false;
      v (Some 9.) false false;
      v (Some 2.) false true;
    |]
  in
  let selected = Harness.Audit.select verdicts in
  let show (i, kinds) =
    Printf.sprintf "%d:%s" i
      (String.concat "+" (List.map Harness.Audit.kind_label kinds))
  in
  check_string "selection" "1:worst+shed 2:errored 4:shed"
    (String.concat " " (List.map show selected));
  check_string "all-infeasible row keeps its incidents" "0:errored"
    (String.concat " " (List.map show (Harness.Audit.select [| v None true false; v None false false |])))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let small_figrec = { Harness.Figure.figrec with xs = [ 2. ] }

(* One audited campaign; returns the artifact bytes and its validated
   record count. *)
let audited_campaign backend jobs =
  with_backend (Some backend) @@ fun () ->
  let dir = Filename.temp_file "manroute-audit" "" in
  Sys.remove dir;
  let _ = Harness.Runner.run ~trials:2 ~seed:7 ~jobs ~audit:dir small_figrec in
  let path =
    Filename.concat dir (small_figrec.Harness.Figure.id ^ "-audit.jsonl")
  in
  let bytes = read_file path in
  let count =
    match Harness.Audit.validate_file path with
    | Ok n -> n
    | Error e -> Alcotest.failf "audit artifact rejected: %s" e
  in
  Sys.remove path;
  (try Sys.rmdir dir with Sys_error _ -> ());
  (bytes, count)

let test_audit_artifact_backend_and_jobs_invariant () =
  let b_t1, n_t1 = audited_campaign true 1 in
  let b_l1, _ = audited_campaign false 1 in
  let b_t2, _ = audited_campaign true 2 in
  let b_l2, _ = audited_campaign false 2 in
  check_bool "artifact has records" true (n_t1 >= 1);
  check_string "audit: table vs legacy, jobs=1" b_t1 b_l1;
  check_string "audit: table vs legacy, jobs=2" b_t2 b_l2;
  check_string "audit: jobs=1 vs jobs=2" b_t1 b_t2

let test_validators_name_line_and_snippet () =
  let path = Filename.temp_file "manroute-audit-bad" ".jsonl" in
  let oc = open_out path in
  output_string oc
    "{\"schema\":\"manroute-audit/1\",\"figure\":\"f\",\"x\":1.0,\"trial\":0,\"kinds\":[],\"cells\":[]}\n\
     {\"schema\":\"wrong/1\",\"figure\":\"f\"}\n";
  close_out oc;
  (match Harness.Audit.validate_file path with
  | Ok _ -> Alcotest.fail "bad schema should have been rejected"
  | Error msg ->
      let contains needle =
        let nh = String.length msg and nn = String.length needle in
        let rec at i =
          i + nn <= nh && (String.sub msg i nn = needle || at (i + 1))
        in
        at 0
      in
      check_bool "error names the line" true (contains "line 2");
      check_bool "error quotes a snippet" true (contains "wrong/1"));
  Sys.remove path

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "probe"
    [
      ( "oracle",
        [
          QCheck_alcotest.to_alcotest prop_probe_matches_evaluate;
          QCheck_alcotest.to_alcotest prop_exact_remainder;
        ] );
      ( "golden",
        [
          Alcotest.test_case "Fig. 2 heatmaps render exactly" `Quick
            test_fig2_heatmap_pins;
          Alcotest.test_case "Fig. 2 attribution pins" `Quick
            test_fig2_attribution_pins;
        ] );
      ( "audit",
        [
          Alcotest.test_case "selection: first worst + every incident"
            `Quick test_select_picks_first_worst_and_all_incidents;
          Alcotest.test_case "artifact backend- and jobs-invariant" `Slow
            test_audit_artifact_backend_and_jobs_invariant;
          Alcotest.test_case "validator errors carry line and snippet"
            `Quick test_validators_name_line_and_snippet;
        ] );
    ]
