(* The online routing service (Optim.Online) and the streaming traces
   that drive it (Traffic.Trace).

   Contract layers: traces drawn from a seeded rng are byte-identical
   and well-formed (every arrival departs, events totally ordered);
   after EVERY served event the engine's [eval] is bit-identical to a
   from-scratch [Evaluate.of_loads] rescore of the live solution, on
   BOTH delta backends (the differential oracle); idle-link switch-off
   honors the hysteresis — a link sleeps only after [idle_epochs]
   zero-load events, pays the wake penalty on reuse — and a sleeping
   session's [mean_power_nosleep] bit-matches a switch-off-disabled run
   of the same trace, which it strictly undercuts; the registry engine
   is deterministic without an rng; and the figserve campaign stays
   byte-identical across worker counts, delta backends, and a
   kill-and-resume through the checkpoint sidecar. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let km = Power.Model.kim_horowitz
let bits = Int64.bits_of_float

let check_bits msg a b =
  Alcotest.(check int64) (msg ^ " (bit-identical)") (bits a) (bits b)

let coord row col = Noc.Coord.make ~row ~col

let comm id r c r' c' rate =
  Traffic.Communication.make ~id ~src:(coord r c) ~snk:(coord r' c') ~rate

let check_reports_bit_equal tag (a : Routing.Evaluate.report)
    (b : Routing.Evaluate.report) =
  check_bool (tag ^ ": feasible") a.Routing.Evaluate.feasible
    b.Routing.Evaluate.feasible;
  check_bits (tag ^ ": total power") a.total_power b.total_power;
  check_bits (tag ^ ": static power") a.static_power b.static_power;
  check_bits (tag ^ ": dynamic power") a.dynamic_power b.dynamic_power;
  check_int (tag ^ ": active links") a.active_links b.active_links;
  check_bits (tag ^ ": max load") a.max_load b.max_load;
  check_bool (tag ^ ": overloaded lists") true (a.overloaded = b.overloaded)

let reports_equal (a : Routing.Evaluate.report) (b : Routing.Evaluate.report)
    =
  a.Routing.Evaluate.feasible = b.Routing.Evaluate.feasible
  && bits a.total_power = bits b.total_power
  && bits a.static_power = bits b.static_power
  && bits a.dynamic_power = bits b.dynamic_power
  && a.active_links = b.active_links
  && bits a.max_load = bits b.max_load
  && a.overloaded = b.overloaded

let with_backend b f =
  Routing.Delta.set_table_backend b;
  Fun.protect ~finally:(fun () -> Routing.Delta.set_table_backend None) f

let profile_of_index i =
  let open Traffic.Trace in
  match i mod 4 with
  | 0 -> Poisson
  | 1 -> Diurnal
  | 2 -> Burst
  | _ -> Hotspot

(* ------------------------------------------------------------------ *)
(* Traces: byte-identical from equal seeds, well-formed, total order *)

let gen_trace ?(arrivals = 24) seed profile =
  let rng = Traffic.Rng.of_key "test-serve" [ Int64.of_int seed ] in
  Traffic.Trace.generate rng (Noc.Mesh.square 6) ~profile ~arrivals ~rate:6.
    ~weight:Traffic.Workload.mixed

let prop_trace_deterministic_and_well_formed =
  QCheck.Test.make
    ~name:
      "traces are a pure function of the seed and every arrival departs"
    ~count:40
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 3))
    (fun (seed, pidx) ->
      let profile = profile_of_index pidx in
      let a = gen_trace seed profile and b = gen_trace seed profile in
      Traffic.Trace.to_string a = Traffic.Trace.to_string b
      && List.length a = 48
      && (* Non-decreasing timestamps. *)
      (let rec sorted = function
         | { Traffic.Trace.time = t1; _ }
           :: ({ Traffic.Trace.time = t2; _ } :: _ as tl) ->
             t1 <= t2 && sorted tl
         | _ -> true
       in
       sorted a)
      &&
      (* Every arrival has exactly one strictly-later departure. *)
      let arrives =
        List.filter_map
          (fun (e : Traffic.Trace.event) ->
            match e.kind with
            | Traffic.Trace.Arrive c ->
                Some (c.Traffic.Communication.id, e.time)
            | Traffic.Trace.Depart _ -> None)
          a
      in
      List.length arrives = 24
      && List.for_all
           (fun (id, t_in) ->
             let departs =
               List.filter
                 (fun (e : Traffic.Trace.event) ->
                   match e.kind with
                   | Traffic.Trace.Depart i -> i = id
                   | Traffic.Trace.Arrive _ -> false)
                 a
             in
             match departs with
             | [ d ] -> d.Traffic.Trace.time > t_in
             | _ -> false)
           arrives)

let test_trace_validation_and_merge () =
  let mesh = Noc.Mesh.square 4 in
  let rng () = Traffic.Rng.of_key "test-serve-merge" [ 3L ] in
  let raises f =
    match f () with _ -> false | exception Invalid_argument _ -> true
  in
  check_bool "negative arrivals rejected" true
    (raises (fun () ->
         Traffic.Trace.generate (rng ()) mesh ~profile:Traffic.Trace.Poisson
           ~arrivals:(-1) ~rate:4. ~weight:Traffic.Workload.mixed));
  check_bool "zero rate rejected" true
    (raises (fun () ->
         Traffic.Trace.generate (rng ()) mesh ~profile:Traffic.Trace.Poisson
           ~arrivals:4 ~rate:0. ~weight:Traffic.Workload.mixed));
  check_bool "persistent zero rate rejected" true
    (raises (fun () ->
         Traffic.Trace.persistent (rng ()) ~rate:0.
           [ comm 0 1 1 2 2 100. ]));
  check_int "zero arrivals is the empty trace" 0
    (List.length
       (Traffic.Trace.generate (rng ()) mesh ~profile:Traffic.Trace.Burst
          ~arrivals:0 ~rate:4. ~weight:Traffic.Workload.mixed));
  (* Merge is symmetric under the global (time, id, kind) order. *)
  let a =
    Traffic.Trace.generate (rng ()) mesh ~profile:Traffic.Trace.Poisson
      ~arrivals:8 ~rate:4. ~weight:Traffic.Workload.mixed
  in
  let b =
    Traffic.Trace.generate ~id_base:8 (rng ()) mesh
      ~profile:Traffic.Trace.Diurnal ~arrivals:8 ~rate:4.
      ~weight:Traffic.Workload.mixed
  in
  check_string "merge order independent of argument order"
    (Traffic.Trace.to_string (Traffic.Trace.merge a b))
    (Traffic.Trace.to_string (Traffic.Trace.merge b a));
  check_int "merge keeps every event" 32
    (List.length (Traffic.Trace.merge a b));
  (* CLI spellings round-trip. *)
  List.iter
    (fun (s, p) ->
      check_bool ("profile spelling " ^ s) true
        (Traffic.Trace.profile_of_string s = Some p
        && Traffic.Trace.profile_name p = s))
    Traffic.Trace.profiles;
  check_bool "unknown profile rejected" true
    (Traffic.Trace.profile_of_string "square-wave" = None)

(* ------------------------------------------------------------------ *)
(* The per-event differential oracle *)

let serve_instance seed p =
  let mesh = Noc.Mesh.square p in
  let rng =
    Traffic.Rng.of_key "test-serve-oracle"
      [ Int64.of_int seed; Int64.of_int p ]
  in
  let resident =
    Traffic.Workload.uniform rng mesh ~n:6 ~weight:Traffic.Workload.mixed
  in
  let arrivals = Traffic.Trace.persistent rng ~rate:4. resident in
  let churn =
    Traffic.Trace.generate ~id_base:6 rng mesh
      ~profile:(profile_of_index seed) ~arrivals:10 ~rate:4.
      ~weight:Traffic.Workload.mixed
  in
  (mesh, Traffic.Trace.merge arrivals churn)

let prop_step_eval_is_full_rescore =
  QCheck.Test.make
    ~name:
      "after every event the engine eval bit-matches a from-scratch \
       rescore (both backends)"
    ~count:10
    QCheck.(pair (int_range 0 1_000_000) (int_range 3 5))
    (fun (seed, p) ->
      List.for_all
        (fun backend ->
          with_backend (Some backend) @@ fun () ->
          let mesh, events = serve_instance seed p in
          let t = Optim.Online.create km mesh in
          List.for_all
            (fun ev ->
              let op = Optim.Online.step t ev in
              let fresh =
                Routing.Evaluate.of_loads km
                  (Routing.Solution.loads
                     ~fault:(Noc.Fault.healthy mesh)
                     (Optim.Online.solution t))
              in
              reports_equal op.Optim.Online.eval fresh
              && op.Optim.Online.live
                 = List.length
                     (Routing.Solution.routes (Optim.Online.solution t)))
            events)
        [ true; false ])

let prop_backends_serve_bit_identically =
  QCheck.Test.make
    ~name:"table and legacy backends serve byte-identical sessions"
    ~count:10
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let session backend =
        with_backend (Some backend) @@ fun () ->
        let mesh, events = serve_instance seed 4 in
        let t = Optim.Online.create km mesh in
        ignore (Optim.Online.serve t events);
        Optim.Online.session t
      in
      let a = session true and b = session false in
      bits a.Optim.Online.mean_power = bits b.Optim.Online.mean_power
      && bits a.mean_power_nosleep = bits b.mean_power_nosleep
      && bits a.p95_work = bits b.p95_work
      && a.s_shed = b.s_shed
      && a.s_sleeps = b.s_sleeps
      && a.s_wakes = b.s_wakes
      && reports_equal a.final b.final)

(* ------------------------------------------------------------------ *)
(* Idle-link switch-off: hysteresis, wake charges, strict saving *)

(* Square 3, row traffic only: same-row endpoints have a unique Manhattan
   path, so the served links are known exactly. With [idle_epochs = 2]:
   event 0 loads row 1 (its 2 forward links), event 1 loads row 3 and
   puts every other link past the hysteresis (sleeps = 24 - 4), event 2
   frees row 1 (idle 1 epoch: NOT yet asleep), event 3 wakes row 2 from
   sleep and finally switches row 1 off, event 4 re-arrives on row 1 and
   pays the wake penalty on both links. *)
let test_sleep_hysteresis_and_wake_charge () =
  let mesh = Noc.Mesh.square 3 in
  let ev time kind = { Traffic.Trace.time; kind } in
  let arr t c = ev t (Traffic.Trace.Arrive c) in
  let events =
    [
      arr 1. (comm 0 1 1 1 3 500.);
      arr 2. (comm 1 3 1 3 3 500.);
      ev 3. (Traffic.Trace.Depart 0);
      arr 4. (comm 2 2 1 2 3 500.);
      arr 5. (comm 3 1 1 1 3 500.);
    ]
  in
  let t =
    Optim.Online.create ~idle_epochs:2 ~wake_penalty:10. km mesh
  in
  let ops = Array.of_list (Optim.Online.serve t events) in
  check_int "event 0: nothing sleeps on the first epoch" 0
    ops.(0).Optim.Online.sleeps;
  check_int "event 1: every never-loaded link sleeps at once" 20
    ops.(1).Optim.Online.sleeps;
  check_int "event 2: freed row 1 is idle but still awake (hysteresis)" 0
    ops.(2).Optim.Online.sleeps;
  check_int "event 2: no wakes on a departure" 0 ops.(2).Optim.Online.wakes;
  check_int "event 3: row 2 traffic wakes its 2 sleeping links" 2
    ops.(3).Optim.Online.wakes;
  check_int "event 3: row 1 crosses idle_epochs and switches off" 2
    ops.(3).Optim.Online.sleeps;
  check_int "event 4: returning row 1 traffic wakes both links" 2
    ops.(4).Optim.Online.wakes;
  check_bits "event 4: wake cost = wake_penalty per woken link"
    (2. *. 10.)
    ops.(4).Optim.Online.power.Optim.Online.wake_cost;
  check_bool "saved leakage flows once links sleep" true
    (ops.(3).Optim.Online.power.Optim.Online.saved_leak > 0.);
  let s = Optim.Online.session t in
  check_int "session wake total" (2 + 2) s.Optim.Online.s_wakes;
  check_int "session sleep total" (20 + 2) s.Optim.Online.s_sleeps

let prop_nosleep_column_bit_matches_disabled_run =
  (* The always-awake column must accumulate the exact expression a
     switch-off-disabled run evaluates: summing the split's already
     rounded idle and saved parts instead loses the identity in the
     last bits (float addition does not distribute over the split). *)
  QCheck.Test.make
    ~name:"mean_power_nosleep bit-matches a sleep-disabled run"
    ~count:15
    QCheck.(pair (int_range 0 1_000_000) (int_range 4 7))
    (fun (seed, p) ->
      let mesh, events = serve_instance seed p in
      let session sleep =
        let t = Optim.Online.create ~sleep km mesh in
        ignore (Optim.Online.serve t events);
        Optim.Online.session t
      in
      let s = session true and s0 = session false in
      bits s.Optim.Online.mean_power_nosleep
      = bits s0.Optim.Online.mean_power
      && bits s0.mean_power = bits s0.mean_power_nosleep
      && reports_equal s.final s0.final
      && (s.s_sleeps = 0 || s.mean_power < s0.mean_power))

let test_sleep_strictly_cheaper_and_nosleep_column () =
  let mesh, events = serve_instance 42 6 in
  let serve_with sleep =
    let t = Optim.Online.create ~sleep km mesh in
    ignore (Optim.Online.serve t events);
    Optim.Online.session t
  in
  let s = serve_with true and s0 = serve_with false in
  check_bool "the trace makes some link sleep" true
    (s.Optim.Online.s_sleeps > 0);
  check_bits "nosleep column bit-matches the switch-off-disabled run"
    s.Optim.Online.mean_power_nosleep s0.Optim.Online.mean_power;
  check_bool "switch-off is strictly cheaper" true
    (s.Optim.Online.mean_power < s0.Optim.Online.mean_power);
  check_bool "saved ratio is positive" true (s.Optim.Online.saved_ratio > 0.);
  check_bits "a disabled run saves nothing" 0. s0.Optim.Online.saved_ratio;
  check_reports_bit_equal "final report is sleep-independent"
    s.Optim.Online.final s0.Optim.Online.final

(* ------------------------------------------------------------------ *)
(* Validation, registry spellings, deterministic engine *)

let test_create_and_engine_validate () =
  let mesh = Noc.Mesh.square 3 in
  let raises f =
    match f () with _ -> false | exception Invalid_argument _ -> true
  in
  check_bool "idle_epochs 0 rejected" true
    (raises (fun () -> Optim.Online.create ~idle_epochs:0 km mesh));
  check_bool "negative wake_penalty rejected" true
    (raises (fun () -> Optim.Online.create ~wake_penalty:(-1.) km mesh));
  check_bool "negative refine budget rejected" true
    (raises (fun () -> Optim.Online.create ~refine_iterations:(-1) km mesh));
  check_bool "negative global budget rejected" true
    (raises (fun () -> Optim.Online.create ~global_iterations:(-1) km mesh));
  check_bool "engine zero rate rejected" true
    (raises (fun () ->
         Optim.Online.engine ~rate:0. km mesh [ comm 0 1 1 2 2 100. ]));
  check_bool "engine negative churn rejected" true
    (raises (fun () ->
         Optim.Online.engine ~churn:(-1) km mesh [ comm 0 1 1 2 2 100. ]));
  check_bool "empty workload serves to an empty solution" true
    (Routing.Solution.routes (Optim.Online.engine km mesh []) = [])

let test_registry_spellings () =
  let name s = Option.map (fun h -> h.Routing.Heuristic.name) s in
  check_bool "bare srv defaults the rate" true
    (name (Optim.Online.find "srv") = Some "SRV8");
  check_bool "srv4" true (name (Optim.Online.find "srv4") = Some "SRV4");
  check_bool "SRV(4)" true (name (Optim.Online.find "SRV(4)") = Some "SRV4");
  check_bool "srv0 rejected (rate >= 1)" true (Optim.Online.find "srv0" = None);
  check_bool "srv-1 rejected" true (Optim.Online.find "srv-1" = None);
  check_bool "srvx rejected" true (Optim.Online.find "srvx" = None);
  check_bool "unrelated names rejected" true (Optim.Online.find "rec8" = None);
  Routing.Heuristic.register Optim.Online.find;
  check_bool "find_extended resolves srv4" true
    (name (Routing.Heuristic.find_extended "srv4") = Some "SRV4");
  check_bool "builtins still resolve first" true
    (name (Routing.Heuristic.find_extended "xy") = Some "XY")

let test_engine_deterministic_and_session_stash () =
  let mesh = Noc.Mesh.square 5 in
  let rng = Traffic.Rng.of_key "test-serve-engine" [ 11L ] in
  let comms =
    Traffic.Workload.uniform rng mesh ~n:8 ~weight:Traffic.Workload.mixed
  in
  ignore (Optim.Online.take_session ());
  let s1 = Optim.Online.engine ~rate:4. km mesh comms in
  let sess1 = Optim.Online.take_session () in
  check_bool "engine stashes a session" true (Option.is_some sess1);
  check_bool "take_session clears the stash" true
    (Optim.Online.take_session () = None);
  let s2 = Optim.Online.engine ~rate:4. km mesh comms in
  let sess2 = Optim.Online.take_session () in
  check_bool "solutions identical without an rng argument" true
    (Routing.Solution.routes s1 = Routing.Solution.routes s2);
  match (sess1, sess2) with
  | Some a, Some b ->
      check_bits "session power deterministic" a.Optim.Online.mean_power
        b.Optim.Online.mean_power;
      check_bits "session tail-work deterministic" a.Optim.Online.p95_work
        b.Optim.Online.p95_work;
      check_reports_bit_equal "final reports deterministic"
        a.Optim.Online.final b.Optim.Online.final
  | _ -> Alcotest.fail "engine did not stash both sessions"

(* ------------------------------------------------------------------ *)
(* End-to-end: the figserve campaign is backend-, jobs- and crash-invariant *)

let small_figserve = { Harness.Figure.figserve with xs = [ 2.; 8. ] }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let campaign backend jobs =
  with_backend (Some backend) @@ fun () ->
  let ckpt = Filename.temp_file "manroute-serve" ".ckpt" in
  let result =
    Harness.Runner.run ~trials:2 ~seed:7 ~jobs ~checkpoint:ckpt small_figserve
  in
  let csv = Harness.Render.csv result in
  let ckpt_bytes = read_file ckpt in
  Sys.remove ckpt;
  (csv, ckpt_bytes)

let test_figserve_campaign_invariant () =
  let csv_t1, ck_t1 = campaign true 1 in
  let csv_l1, ck_l1 = campaign false 1 in
  let csv_t2, ck_t2 = campaign true 2 in
  check_string "csv: table vs legacy, jobs=1" csv_t1 csv_l1;
  check_string "csv: jobs=1 vs jobs=2" csv_t1 csv_t2;
  check_string "checkpoint: table vs legacy, jobs=1" ck_t1 ck_l1;
  check_string "checkpoint: jobs=1 vs jobs=2" ck_t1 ck_t2;
  check_bool "csv has the SRV serve-power column" true
    (contains csv_t1 "SRV_srv_power");
  check_bool "csv has the SRV saved-ratio column" true
    (contains csv_t1 "SRV_srv_saved");
  check_bool "csv has the SRV tail-work column" true
    (contains csv_t1 "SRV_srv_p95");
  check_bool "csv has the no-sleep baseline columns" true
    (contains csv_t1 "SRV0_srv_power")

let rows_equal (a : Harness.Runner.result) (b : Harness.Runner.result) =
  List.length a.rows = List.length b.rows
  && List.for_all2
       (fun (ra : Harness.Runner.row) (rb : Harness.Runner.row) ->
         ra.x = rb.x && ra.cells = rb.cells)
       a.rows b.rows

let test_figserve_kill_and_resume () =
  with_backend (Some true) @@ fun () ->
  let path = Filename.temp_file "manroute-serve-resume" ".ckpt" in
  let fresh = Harness.Runner.run ~trials:2 ~seed:7 ~jobs:1 small_figserve in
  ignore
    (Harness.Runner.run ~trials:2 ~seed:7 ~jobs:1 ~checkpoint:path
       small_figserve);
  (* Keep the first completed row, then leave a torn half-written line
     with no newline, as a dying process would. *)
  let ic = open_in path in
  let first_line = input_line ic in
  close_in ic;
  let oc = open_out path in
  output_string oc (first_line ^ "\nrow\tv1\tfigserve\t7\t2\t0x1p+");
  close_out oc;
  let resumed =
    Harness.Runner.run ~trials:2 ~seed:7 ~jobs:2 ~checkpoint:path
      small_figserve
  in
  check_bool "killed-and-resumed campaign bit-identical" true
    (rows_equal fresh resumed);
  check_string "resumed CSV byte-identical" (Harness.Render.csv fresh)
    (Harness.Render.csv resumed);
  Sys.remove path

let () =
  Alcotest.run "serve"
    [
      ( "trace",
        [
          QCheck_alcotest.to_alcotest prop_trace_deterministic_and_well_formed;
          Alcotest.test_case "validation, merge order, spellings" `Quick
            test_trace_validation_and_merge;
        ] );
      ( "oracle",
        [
          QCheck_alcotest.to_alcotest prop_step_eval_is_full_rescore;
          QCheck_alcotest.to_alcotest prop_backends_serve_bit_identically;
        ] );
      ( "switch-off",
        [
          Alcotest.test_case "hysteresis and wake charges" `Quick
            test_sleep_hysteresis_and_wake_charge;
          QCheck_alcotest.to_alcotest
            prop_nosleep_column_bit_matches_disabled_run;
          Alcotest.test_case "sleeping run strictly cheaper" `Quick
            test_sleep_strictly_cheaper_and_nosleep_column;
        ] );
      ( "engine",
        [
          Alcotest.test_case "validation" `Quick
            test_create_and_engine_validate;
          Alcotest.test_case "registry spellings" `Quick
            test_registry_spellings;
          Alcotest.test_case "engine deterministic, session stashed" `Quick
            test_engine_deterministic_and_session_stash;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "figserve campaign backend- and jobs-invariant"
            `Slow test_figserve_campaign_invariant;
          Alcotest.test_case "figserve campaign survives a kill-and-resume"
            `Slow test_figserve_kill_and_resume;
        ] );
    ]
