(* Tests for the experiment harness: figure generators, the Monte-Carlo
   runner's bookkeeping, CSV rendering and summary aggregation. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let test_figures_registered () =
  check_int "nine figures" 9 (List.length Harness.Figure.all);
  check_bool "find fig8b" true
    (match Harness.Figure.find "FIG8B" with
    | Some f -> f.Harness.Figure.id = "fig8b"
    | None -> false);
  check_bool "unknown" true (Harness.Figure.find "fig10" = None)

let test_generators_obey_specs () =
  let rng = Traffic.Rng.create 9 in
  (* fig7a draws x communications with small weights. *)
  let comms = Harness.Figure.fig7a.generate rng 40. in
  check_int "count" 40 (List.length comms);
  List.iter
    (fun (c : Traffic.Communication.t) ->
      check_bool "small band" true (c.rate >= 100. && c.rate < 1500.))
    comms;
  (* fig8b draws 20 comms around the given average weight. *)
  let comms = Harness.Figure.fig8b.generate rng 2000. in
  check_int "count" 20 (List.length comms);
  List.iter
    (fun (c : Traffic.Communication.t) ->
      check_bool "centered band" true (c.rate >= 1750. && c.rate < 2250.))
    comms;
  (* fig9c draws 12 comms of length x-1..x+1. *)
  let comms = Harness.Figure.fig9c.generate rng 6. in
  check_int "count" 12 (List.length comms);
  List.iter
    (fun c ->
      let len = Traffic.Communication.length c in
      check_bool "length near 6" true (len >= 5 && len <= 7))
    comms

let tiny_figure =
  {
    Harness.Figure.id = "tiny";
    title = "tiny test figure";
    xlabel = "n";
    xs = [ 2.; 4. ];
    generate =
      (fun rng x ->
        Traffic.Workload.uniform rng Harness.Figure.mesh ~n:(int_of_float x)
          ~weight:Traffic.Workload.small);
  }

let test_runner_bookkeeping () =
  let acc = Harness.Summary.create () in
  let r = Harness.Runner.run ~trials:10 ~summary:acc tiny_figure in
  check_int "two rows" 2 (List.length r.rows);
  List.iter
    (fun (row : Harness.Runner.row) ->
      check_int "seven cells" 7 (List.length row.cells);
      let best = List.assoc "BEST" row.cells in
      List.iter
        (fun (_, (s : Harness.Runner.stats)) ->
          check_bool "failure ratio in [0,1]" true
            (s.failure_ratio >= 0. && s.failure_ratio <= 1.);
          check_bool "norm in [0,1]" true
            (s.norm_inv_power >= 0. && s.norm_inv_power <= 1. +. 1e-9);
          check_bool "best dominates" true
            (s.norm_inv_power <= best.norm_inv_power +. 1e-9))
        row.cells;
      (* For BEST, normalized inverse power is exactly its success rate. *)
      check_float "best norm = success" (1. -. best.failure_ratio)
        best.norm_inv_power)
    r.rows;
  let s = Harness.Summary.finalize acc in
  check_int "instances observed" 20 s.Harness.Summary.instances

let test_runner_deterministic () =
  let run () = Harness.Runner.run ~trials:5 ~seed:3 tiny_figure in
  let a = run () and b = run () in
  List.iter2
    (fun (ra : Harness.Runner.row) (rb : Harness.Runner.row) ->
      List.iter2
        (fun (na, (sa : Harness.Runner.stats)) (nb, (sb : Harness.Runner.stats)) ->
          check_bool "same name" true (na = nb);
          check_float "same norm" sa.norm_inv_power sb.norm_inv_power;
          check_float "same fail" sa.failure_ratio sb.failure_ratio)
        ra.cells rb.cells)
    a.rows b.rows

let test_runner_jobs_invariant () =
  (* The sharding contract: jobs:1 and jobs:4 with the same seed give
     bit-identical rows and identical Summary counters (runtimes are the
     one wall-clock-dependent output and are excluded). *)
  let campaign jobs =
    let acc = Harness.Summary.create () in
    let r = Harness.Runner.run ~trials:12 ~seed:7 ~jobs ~summary:acc tiny_figure in
    (r, Harness.Summary.finalize acc)
  in
  let r1, s1 = campaign 1 and r4, s4 = campaign 4 in
  List.iter2
    (fun (ra : Harness.Runner.row) (rb : Harness.Runner.row) ->
      check_bool "same x" true (ra.x = rb.x);
      List.iter2
        (fun (na, (sa : Harness.Runner.stats)) (nb, (sb : Harness.Runner.stats)) ->
          check_bool "same name" true (na = nb);
          check_bool "bit-identical stats" true (sa = sb))
        ra.cells rb.cells)
    r1.rows r4.rows;
  check_int "same instances" s1.Harness.Summary.instances
    s4.Harness.Summary.instances;
  check_bool "identical success ratios" true
    (s1.success_ratio = s4.success_ratio);
  check_bool "identical mean inverse power" true
    (s1.mean_inverse_power = s4.mean_inverse_power);
  check_bool "identical vs-XY ratios" true
    (s1.inverse_power_vs_xy = s4.inverse_power_vs_xy);
  check_bool "identical static fraction" true
    (s1.static_fraction = s4.static_fraction
    || (Float.is_nan s1.static_fraction && Float.is_nan s4.static_fraction))

let test_pool_map_orders_results () =
  let a = Harness.Pool.map ~jobs:4 100 (fun i -> i * i) in
  check_int "length" 100 (Array.length a);
  Array.iteri (fun i v -> check_int "ordered" (i * i) v) a;
  check_int "empty" 0 (Array.length (Harness.Pool.map ~jobs:4 0 Fun.id));
  check_int "singleton" 1 (Array.length (Harness.Pool.map ~jobs:4 1 Fun.id))

let test_pool_map_propagates_exceptions () =
  Alcotest.check_raises "worker exception reaches caller"
    (Invalid_argument "boom") (fun () ->
      ignore
        (Harness.Pool.map ~jobs:3 64 (fun i ->
             if i = 13 then invalid_arg "boom" else i)))

let test_summary_merge_matches_sequential () =
  (* Folding two halves into separate accumulators and merging equals one
     sequential accumulation. *)
  let seq = Harness.Summary.create () in
  ignore (Harness.Runner.run ~trials:10 ~seed:2 ~summary:seq tiny_figure);
  let a = Harness.Summary.create () and b = Harness.Summary.create () in
  ignore (Harness.Runner.run ~trials:10 ~seed:2 ~summary:a tiny_figure);
  Harness.Summary.merge ~into:b a;
  let fs = Harness.Summary.finalize seq and fm = Harness.Summary.finalize b in
  check_int "instances" fs.Harness.Summary.instances
    fm.Harness.Summary.instances;
  check_bool "success ratios" true (fs.success_ratio = fm.success_ratio);
  check_bool "mean inverse power" true
    (fs.mean_inverse_power = fm.mean_inverse_power)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_csv_shape () =
  let r = Harness.Runner.run ~trials:3 tiny_figure in
  let csv = Harness.Render.csv r in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "header + 2 rows" 3 (List.length lines);
  let header = List.hd lines in
  check_bool "header starts with x" true (String.length header > 1 && header.[0] = 'x');
  check_bool "has XYI column" true (contains_substring header "XYI_norm")

let test_write_csv () =
  let r = Harness.Runner.run ~trials:2 tiny_figure in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "manroute_test_csv" in
  let path = Harness.Render.write_csv ~dir r in
  check_bool "file exists" true (Sys.file_exists path);
  Sys.remove path

let test_summary_ratios () =
  let acc = Harness.Summary.create () in
  ignore (Harness.Runner.run ~trials:15 ~summary:acc tiny_figure);
  let s = Harness.Summary.finalize acc in
  let get name l = List.assoc name l in
  check_bool "XY baseline is 1" true
    (Float.abs (get "XY" s.Harness.Summary.inverse_power_vs_xy -. 1.) < 1e-9);
  check_bool "BEST dominates XY" true
    (get "BEST" s.Harness.Summary.inverse_power_vs_xy >= 1.);
  check_bool "success ratios in range" true
    (List.for_all (fun (_, v) -> v >= 0. && v <= 1.) s.Harness.Summary.success_ratio);
  check_bool "runtimes measured" true (s.Harness.Summary.mean_runtime_ms <> [])

let test_pp_result_smoke () =
  let r = Harness.Runner.run ~trials:2 tiny_figure in
  let s = Format.asprintf "%a" Harness.Render.pp_result r in
  check_bool "mentions every heuristic" true
    (List.for_all
       (fun (h : Routing.Heuristic.t) -> contains_substring s h.name)
       Routing.Heuristic.all);
  check_bool "mentions BEST" true (contains_substring s "BEST");
  check_bool "mentions the title" true (contains_substring s "tiny test figure")

let test_summary_pp_smoke () =
  let acc = Harness.Summary.create () in
  ignore (Harness.Runner.run ~trials:3 ~summary:acc tiny_figure);
  let s = Format.asprintf "%a" Harness.Summary.pp (Harness.Summary.finalize acc) in
  check_bool "has success block" true (contains_substring s "success ratio");
  check_bool "has runtime block" true (contains_substring s "mean runtime");
  check_bool "instance count" true (contains_substring s "6 instances")

let test_stderr_sane () =
  let r = Harness.Runner.run ~trials:20 tiny_figure in
  List.iter
    (fun (row : Harness.Runner.row) ->
      List.iter
        (fun (_, (s : Harness.Runner.stats)) ->
          check_bool "stderr non-negative" true (s.norm_stderr >= 0.);
          (* A mean in [0,1] over 20 samples has stderr at most ~0.12. *)
          check_bool "stderr bounded" true (s.norm_stderr <= 0.12))
        row.cells)
    r.rows

(* ------------------------------------------------------------------ *)
(* Heatmap *)

let test_heatmap_shape_and_symbols () =
  let mesh = Noc.Mesh.square 3 in
  let loads = Noc.Load.create mesh in
  let link r1 c1 r2 c2 =
    Noc.Mesh.link
      ~src:(Noc.Coord.make ~row:r1 ~col:c1)
      ~dst:(Noc.Coord.make ~row:r2 ~col:c2)
  in
  Noc.Load.add_link loads (link 1 1 1 2) 3500.;  (* full: '9' *)
  Noc.Load.add_link loads (link 2 1 2 2) 350.;   (* one tenth: '1' *)
  Noc.Load.add_link loads (link 1 1 2 1) 4000.;  (* overloaded: '!' *)
  let s = Harness.Render.heatmap loads in
  let lines = String.split_on_char '\n' (String.trim s) in
  check_int "5 lines for 3x3" 5 (List.length lines);
  check_bool "full link shown as 9" true
    (String.length (List.nth lines 0) > 2 && (List.nth lines 0).[2] = '9');
  check_bool "tenth link shown as 1" true ((List.nth lines 2).[2] = '1');
  check_bool "overload shown as !" true ((List.nth lines 1).[0] = '!');
  check_bool "idle shown as ." true ((List.nth lines 3).[0] = '.')

let test_heatmap_uses_busier_direction () =
  let mesh = Noc.Mesh.square 2 in
  let loads = Noc.Load.create mesh in
  let fwd =
    Noc.Mesh.link
      ~src:(Noc.Coord.make ~row:1 ~col:1)
      ~dst:(Noc.Coord.make ~row:1 ~col:2)
  and bwd =
    Noc.Mesh.link
      ~src:(Noc.Coord.make ~row:1 ~col:2)
      ~dst:(Noc.Coord.make ~row:1 ~col:1)
  in
  Noc.Load.add_link loads fwd 100.;
  Noc.Load.add_link loads bwd 3400.;
  let s = Harness.Render.heatmap loads in
  check_bool "max of both directions" true ((List.nth (String.split_on_char '\n' s) 0).[2] = '9')

let test_heatmap_single_row () =
  let mesh = Noc.Mesh.create ~rows:1 ~cols:4 in
  let loads = Noc.Load.create mesh in
  Noc.Load.add_link loads
    (Noc.Mesh.link ~src:(Noc.Coord.make ~row:1 ~col:1)
       ~dst:(Noc.Coord.make ~row:1 ~col:2))
    1750.;
  let s = String.trim (Harness.Render.heatmap loads) in
  check_int "single line" 1 (List.length (String.split_on_char '\n' s));
  check_bool "half load is 5" true (s.[2] = '5')

(* ------------------------------------------------------------------ *)
(* Problem files *)

let test_problem_roundtrip () =
  let rng = Traffic.Rng.create 12 in
  let mesh = Noc.Mesh.create ~rows:4 ~cols:6 in
  let comms = Traffic.Workload.uniform rng mesh ~n:9 ~weight:Traffic.Workload.small in
  let p = { Harness.Problem.mesh; comms } in
  match Harness.Problem.parse (Harness.Problem.to_string p) with
  | Error m -> Alcotest.fail m
  | Ok p' ->
      check_int "rows" 4 (Noc.Mesh.rows p'.Harness.Problem.mesh);
      check_int "cols" 6 (Noc.Mesh.cols p'.Harness.Problem.mesh);
      check_int "count" 9 (List.length p'.comms);
      List.iter2
        (fun (a : Traffic.Communication.t) (b : Traffic.Communication.t) ->
          check_bool "same endpoints" true
            (Noc.Coord.equal a.src b.src && Noc.Coord.equal a.snk b.snk);
          check_bool "same rate" true (Float.abs (a.rate -. b.rate) < 1e-6))
        comms p'.comms

let test_problem_comments_and_blanks () =
  let text = "# a comment\n\nmesh 2 2\n\n  # another\ncomm 1 1 2 2 100\n" in
  match Harness.Problem.parse text with
  | Ok p -> check_int "one comm" 1 (List.length p.Harness.Problem.comms)
  | Error m -> Alcotest.fail m

let test_problem_errors () =
  let expect_error text =
    match Harness.Problem.parse text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "should reject: %s" text
  in
  expect_error "";
  expect_error "comm 1 1 2 2 100";
  expect_error "mesh 0 4";
  expect_error "mesh 2 2\ncomm 1 1 5 5 100";
  expect_error "mesh 2 2\ncomm 1 1 2 2 -5";
  expect_error "mesh 2 2\ncomm 1 1 1 1 100";
  expect_error "mesh 2 2\nnonsense line"

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "harness"
    [
      ( "figures",
        [
          quick "registered" test_figures_registered;
          quick "generators obey specs" test_generators_obey_specs;
        ] );
      ( "runner",
        [
          quick "bookkeeping" test_runner_bookkeeping;
          quick "deterministic" test_runner_deterministic;
          quick "jobs invariant" test_runner_jobs_invariant;
        ] );
      ( "pool",
        [
          quick "map orders results" test_pool_map_orders_results;
          quick "map propagates exceptions" test_pool_map_propagates_exceptions;
          quick "summary merge" test_summary_merge_matches_sequential;
        ] );
      ( "render",
        [
          quick "csv shape" test_csv_shape;
          quick "write csv" test_write_csv;
          quick "pp result smoke" test_pp_result_smoke;
          quick "summary pp smoke" test_summary_pp_smoke;
          quick "stderr sane" test_stderr_sane;
        ] );
      ("summary", [ quick "ratios" test_summary_ratios ]);
      ( "heatmap",
        [
          quick "shape and symbols" test_heatmap_shape_and_symbols;
          quick "busier direction" test_heatmap_uses_busier_direction;
          quick "single row" test_heatmap_single_row;
        ] );
      ( "problem",
        [
          quick "roundtrip" test_problem_roundtrip;
          quick "comments and blanks" test_problem_comments_and_blanks;
          quick "errors" test_problem_errors;
        ] );
    ]
