(* Tests for the experiment harness: figure generators, the Monte-Carlo
   runner's bookkeeping, CSV rendering and summary aggregation. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let test_figures_registered () =
  check_int "fifteen figures" 15 (List.length Harness.Figure.all);
  check_bool "find fig8b" true
    (match Harness.Figure.find "FIG8B" with
    | Some f -> f.Harness.Figure.id = "fig8b"
    | None -> false);
  check_bool "find figpf" true
    (match Harness.Figure.find "figpf" with
    | Some f -> f.Harness.Figure.id = "figpf"
    | None -> false);
  check_bool "find figrec" true
    (match Harness.Figure.find "figrec" with
    | Some f -> f.Harness.Figure.id = "figrec"
    | None -> false);
  check_bool "find figpareto" true
    (match Harness.Figure.find "figpareto" with
    | Some f ->
        f.Harness.Figure.id = "figpareto" && f.Harness.Figure.sim <> None
    | None -> false);
  check_bool "unknown" true (Harness.Figure.find "fig10" = None)

let test_generators_obey_specs () =
  let rng = Traffic.Rng.create 9 in
  (* fig7a draws x communications with small weights. *)
  let comms = Harness.Figure.fig7a.generate rng 40. in
  check_int "count" 40 (List.length comms);
  List.iter
    (fun (c : Traffic.Communication.t) ->
      check_bool "small band" true (c.rate >= 100. && c.rate < 1500.))
    comms;
  (* fig8b draws 20 comms around the given average weight. *)
  let comms = Harness.Figure.fig8b.generate rng 2000. in
  check_int "count" 20 (List.length comms);
  List.iter
    (fun (c : Traffic.Communication.t) ->
      check_bool "centered band" true (c.rate >= 1750. && c.rate < 2250.))
    comms;
  (* fig9c draws 12 comms of length x-1..x+1. *)
  let comms = Harness.Figure.fig9c.generate rng 6. in
  check_int "count" 12 (List.length comms);
  List.iter
    (fun c ->
      let len = Traffic.Communication.length c in
      check_bool "length near 6" true (len >= 5 && len <= 7))
    comms

let tiny_figure =
  {
    Harness.Figure.id = "tiny";
    title = "tiny test figure";
    xlabel = "n";
    xs = [ 2.; 4. ];
    generate =
      (fun rng x ->
        Traffic.Workload.uniform rng Harness.Figure.mesh ~n:(int_of_float x)
          ~weight:Traffic.Workload.small);
    scenario = None;
    paired = false;
    heuristics = None;
    sim = None;
  }

let test_runner_bookkeeping () =
  let acc = Harness.Summary.create () in
  let r = Harness.Runner.run ~trials:10 ~summary:acc tiny_figure in
  check_int "two rows" 2 (List.length r.rows);
  List.iter
    (fun (row : Harness.Runner.row) ->
      check_int "seven cells" 7 (List.length row.cells);
      let best = List.assoc "BEST" row.cells in
      List.iter
        (fun (_, (s : Harness.Runner.stats)) ->
          check_bool "failure ratio in [0,1]" true
            (s.failure_ratio >= 0. && s.failure_ratio <= 1.);
          check_bool "norm in [0,1]" true
            (s.norm_inv_power >= 0. && s.norm_inv_power <= 1. +. 1e-9);
          check_bool "best dominates" true
            (s.norm_inv_power <= best.norm_inv_power +. 1e-9))
        row.cells;
      (* For BEST, normalized inverse power is exactly its success rate. *)
      check_float "best norm = success" (1. -. best.failure_ratio)
        best.norm_inv_power)
    r.rows;
  let s = Harness.Summary.finalize acc in
  check_int "instances observed" 20 s.Harness.Summary.instances

let test_runner_deterministic () =
  let run () = Harness.Runner.run ~trials:5 ~seed:3 tiny_figure in
  let a = run () and b = run () in
  List.iter2
    (fun (ra : Harness.Runner.row) (rb : Harness.Runner.row) ->
      List.iter2
        (fun (na, (sa : Harness.Runner.stats)) (nb, (sb : Harness.Runner.stats)) ->
          check_bool "same name" true (na = nb);
          check_float "same norm" sa.norm_inv_power sb.norm_inv_power;
          check_float "same fail" sa.failure_ratio sb.failure_ratio)
        ra.cells rb.cells)
    a.rows b.rows

let test_runner_jobs_invariant () =
  (* The sharding contract: jobs:1 and jobs:4 with the same seed give
     bit-identical rows and identical Summary counters (runtimes are the
     one wall-clock-dependent output and are excluded). *)
  let campaign jobs =
    let acc = Harness.Summary.create () in
    let r = Harness.Runner.run ~trials:12 ~seed:7 ~jobs ~summary:acc tiny_figure in
    (r, Harness.Summary.finalize acc)
  in
  let r1, s1 = campaign 1 and r4, s4 = campaign 4 in
  List.iter2
    (fun (ra : Harness.Runner.row) (rb : Harness.Runner.row) ->
      check_bool "same x" true (ra.x = rb.x);
      List.iter2
        (fun (na, (sa : Harness.Runner.stats)) (nb, (sb : Harness.Runner.stats)) ->
          check_bool "same name" true (na = nb);
          check_bool "bit-identical stats" true (sa = sb))
        ra.cells rb.cells)
    r1.rows r4.rows;
  check_int "same instances" s1.Harness.Summary.instances
    s4.Harness.Summary.instances;
  check_bool "identical success ratios" true
    (s1.success_ratio = s4.success_ratio);
  check_bool "identical mean inverse power" true
    (s1.mean_inverse_power = s4.mean_inverse_power);
  check_bool "identical vs-XY ratios" true
    (s1.inverse_power_vs_xy = s4.inverse_power_vs_xy);
  check_bool "identical static fraction" true
    (s1.static_fraction = s4.static_fraction
    || (Float.is_nan s1.static_fraction && Float.is_nan s4.static_fraction))

let test_pool_map_orders_results () =
  let a = Harness.Pool.map ~jobs:4 100 (fun i -> i * i) in
  check_int "length" 100 (Array.length a);
  Array.iteri (fun i v -> check_int "ordered" (i * i) v) a;
  check_int "empty" 0 (Array.length (Harness.Pool.map ~jobs:4 0 Fun.id));
  check_int "singleton" 1 (Array.length (Harness.Pool.map ~jobs:4 1 Fun.id))

let test_pool_map_propagates_exceptions () =
  Alcotest.check_raises "worker exception reaches caller"
    (Invalid_argument "boom") (fun () ->
      ignore
        (Harness.Pool.map ~jobs:3 64 (fun i ->
             if i = 13 then invalid_arg "boom" else i)))

let test_summary_merge_matches_sequential () =
  (* Folding two halves into separate accumulators and merging equals one
     sequential accumulation. *)
  let seq = Harness.Summary.create () in
  ignore (Harness.Runner.run ~trials:10 ~seed:2 ~summary:seq tiny_figure);
  let a = Harness.Summary.create () and b = Harness.Summary.create () in
  ignore (Harness.Runner.run ~trials:10 ~seed:2 ~summary:a tiny_figure);
  Harness.Summary.merge ~into:b a;
  let fs = Harness.Summary.finalize seq and fm = Harness.Summary.finalize b in
  check_int "instances" fs.Harness.Summary.instances
    fm.Harness.Summary.instances;
  check_bool "success ratios" true (fs.success_ratio = fm.success_ratio);
  check_bool "mean inverse power" true
    (fs.mean_inverse_power = fm.mean_inverse_power)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_csv_shape () =
  let r = Harness.Runner.run ~trials:3 tiny_figure in
  let csv = Harness.Render.csv r in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "header + 2 rows" 3 (List.length lines);
  let header = List.hd lines in
  check_bool "header starts with x" true (String.length header > 1 && header.[0] = 'x');
  check_bool "has XYI column" true (contains_substring header "XYI_norm")

let test_write_csv () =
  let r = Harness.Runner.run ~trials:2 tiny_figure in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "manroute_test_csv" in
  let path = Harness.Render.write_csv ~dir r in
  check_bool "file exists" true (Sys.file_exists path);
  Sys.remove path

let test_summary_ratios () =
  let acc = Harness.Summary.create () in
  ignore (Harness.Runner.run ~trials:15 ~summary:acc tiny_figure);
  let s = Harness.Summary.finalize acc in
  let get name l = List.assoc name l in
  check_bool "XY baseline is 1" true
    (Float.abs (get "XY" s.Harness.Summary.inverse_power_vs_xy -. 1.) < 1e-9);
  check_bool "BEST dominates XY" true
    (get "BEST" s.Harness.Summary.inverse_power_vs_xy >= 1.);
  check_bool "success ratios in range" true
    (List.for_all (fun (_, v) -> v >= 0. && v <= 1.) s.Harness.Summary.success_ratio);
  check_bool "runtimes measured" true (s.Harness.Summary.mean_runtime_ms <> [])

let test_pp_result_smoke () =
  let r = Harness.Runner.run ~trials:2 tiny_figure in
  let s = Format.asprintf "%a" Harness.Render.pp_result r in
  check_bool "mentions every heuristic" true
    (List.for_all
       (fun (h : Routing.Heuristic.t) -> contains_substring s h.name)
       Routing.Heuristic.all);
  check_bool "mentions BEST" true (contains_substring s "BEST");
  check_bool "mentions the title" true (contains_substring s "tiny test figure")

let test_summary_pp_smoke () =
  let acc = Harness.Summary.create () in
  ignore (Harness.Runner.run ~trials:3 ~summary:acc tiny_figure);
  let s = Format.asprintf "%a" Harness.Summary.pp (Harness.Summary.finalize acc) in
  check_bool "has success block" true (contains_substring s "success ratio");
  check_bool "has runtime block" true (contains_substring s "mean runtime");
  check_bool "instance count" true (contains_substring s "6 instances")

let test_stderr_sane () =
  let r = Harness.Runner.run ~trials:20 tiny_figure in
  List.iter
    (fun (row : Harness.Runner.row) ->
      List.iter
        (fun (_, (s : Harness.Runner.stats)) ->
          check_bool "stderr non-negative" true (s.norm_stderr >= 0.);
          (* A mean in [0,1] over 20 samples has stderr at most ~0.12. *)
          check_bool "stderr bounded" true (s.norm_stderr <= 0.12))
        row.cells)
    r.rows

(* ------------------------------------------------------------------ *)
(* Heatmap *)

let test_heatmap_shape_and_symbols () =
  let mesh = Noc.Mesh.square 3 in
  let loads = Noc.Load.create mesh in
  let link r1 c1 r2 c2 =
    Noc.Mesh.link
      ~src:(Noc.Coord.make ~row:r1 ~col:c1)
      ~dst:(Noc.Coord.make ~row:r2 ~col:c2)
  in
  Noc.Load.add_link loads (link 1 1 1 2) 3500.;  (* full: '9' *)
  Noc.Load.add_link loads (link 2 1 2 2) 350.;   (* one tenth: '1' *)
  Noc.Load.add_link loads (link 1 1 2 1) 4000.;  (* overloaded: '!' *)
  let s = Harness.Render.heatmap loads in
  let lines = String.split_on_char '\n' (String.trim s) in
  check_int "5 lines for 3x3" 5 (List.length lines);
  check_bool "full link shown as 9" true
    (String.length (List.nth lines 0) > 2 && (List.nth lines 0).[2] = '9');
  check_bool "tenth link shown as 1" true ((List.nth lines 2).[2] = '1');
  check_bool "overload shown as !" true ((List.nth lines 1).[0] = '!');
  check_bool "idle shown as ." true ((List.nth lines 3).[0] = '.')

let test_heatmap_uses_busier_direction () =
  let mesh = Noc.Mesh.square 2 in
  let loads = Noc.Load.create mesh in
  let fwd =
    Noc.Mesh.link
      ~src:(Noc.Coord.make ~row:1 ~col:1)
      ~dst:(Noc.Coord.make ~row:1 ~col:2)
  and bwd =
    Noc.Mesh.link
      ~src:(Noc.Coord.make ~row:1 ~col:2)
      ~dst:(Noc.Coord.make ~row:1 ~col:1)
  in
  Noc.Load.add_link loads fwd 100.;
  Noc.Load.add_link loads bwd 3400.;
  let s = Harness.Render.heatmap loads in
  check_bool "max of both directions" true ((List.nth (String.split_on_char '\n' s) 0).[2] = '9')

let test_heatmap_single_row () =
  let mesh = Noc.Mesh.create ~rows:1 ~cols:4 in
  let loads = Noc.Load.create mesh in
  Noc.Load.add_link loads
    (Noc.Mesh.link ~src:(Noc.Coord.make ~row:1 ~col:1)
       ~dst:(Noc.Coord.make ~row:1 ~col:2))
    1750.;
  let s = String.trim (Harness.Render.heatmap loads) in
  check_int "single line" 1 (List.length (String.split_on_char '\n' s));
  check_bool "half load is 5" true (s.[2] = '5')

(* ------------------------------------------------------------------ *)
(* Problem files *)

let test_problem_roundtrip () =
  let rng = Traffic.Rng.create 12 in
  let mesh = Noc.Mesh.create ~rows:4 ~cols:6 in
  let comms = Traffic.Workload.uniform rng mesh ~n:9 ~weight:Traffic.Workload.small in
  let p = { Harness.Problem.mesh; comms } in
  match Harness.Problem.parse (Harness.Problem.to_string p) with
  | Error m -> Alcotest.fail m
  | Ok p' ->
      check_int "rows" 4 (Noc.Mesh.rows p'.Harness.Problem.mesh);
      check_int "cols" 6 (Noc.Mesh.cols p'.Harness.Problem.mesh);
      check_int "count" 9 (List.length p'.comms);
      List.iter2
        (fun (a : Traffic.Communication.t) (b : Traffic.Communication.t) ->
          check_bool "same endpoints" true
            (Noc.Coord.equal a.src b.src && Noc.Coord.equal a.snk b.snk);
          check_bool "same rate" true (Float.abs (a.rate -. b.rate) < 1e-6))
        comms p'.comms

let test_problem_comments_and_blanks () =
  let text = "# a comment\n\nmesh 2 2\n\n  # another\ncomm 1 1 2 2 100\n" in
  match Harness.Problem.parse text with
  | Ok p -> check_int "one comm" 1 (List.length p.Harness.Problem.comms)
  | Error m -> Alcotest.fail m

let test_problem_errors () =
  let expect_error text =
    match Harness.Problem.parse text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "should reject: %s" text
  in
  expect_error "";
  expect_error "comm 1 1 2 2 100";
  expect_error "mesh 0 4";
  expect_error "mesh 2 2\ncomm 1 1 5 5 100";
  expect_error "mesh 2 2\ncomm 1 1 2 2 -5";
  expect_error "mesh 2 2\ncomm 1 1 1 1 100";
  expect_error "mesh 2 2\nnonsense line"

(* ------------------------------------------------------------------ *)
(* Crash safety: error isolation and checkpoints *)

let bomb =
  Routing.Heuristic.of_plain ~name:"BOMB" ~description:"always raises"
    (fun _ _ _ -> failwith "kaboom")

let test_runner_isolates_heuristic_errors () =
  let acc = Harness.Summary.create () in
  let heuristics = Routing.Heuristic.all @ [ bomb ] in
  let r =
    Harness.Runner.run ~trials:6 ~seed:4 ~heuristics ~summary:acc tiny_figure
  in
  check_int "campaign completes" 2 (List.length r.rows);
  let reference = Harness.Runner.run ~trials:6 ~seed:4 tiny_figure in
  List.iter2
    (fun (row : Harness.Runner.row) (ref_row : Harness.Runner.row) ->
      let b = List.assoc "BOMB" row.cells in
      check_float "bomb errors every trial" 1. b.error_ratio;
      check_float "errors count as failures" 1. b.failure_ratio;
      check_float "errored cell scores zero" 0. b.norm_inv_power;
      check_bool "error message captured" true
        (match b.error_example with
        | Some m -> contains_substring m "kaboom"
        | None -> false);
      (* Every other cell is error-free and bit-identical to a campaign
         run without the bomb at all. *)
      List.iter
        (fun (name, (s : Harness.Runner.stats)) ->
          if name <> "BOMB" then begin
            check_float (name ^ " error-free") 0. s.error_ratio;
            check_bool (name ^ " unaffected") true
              (s = List.assoc name ref_row.cells)
          end)
        row.cells)
    r.rows reference.rows;
  (* Trials with any errored cell are excluded from the summary. *)
  let s = Harness.Summary.finalize acc in
  check_int "no instance observed" 0 s.Harness.Summary.instances

let test_fault_figure_campaign () =
  match Harness.Figure.find "figf" with
  | None -> Alcotest.fail "figf not registered"
  | Some fig ->
      let r = Harness.Runner.run ~trials:4 ~seed:5 fig in
      check_int "seven x points" 7 (List.length r.rows);
      let best (row : Harness.Runner.row) = List.assoc "BEST" row.cells in
      let first = List.hd r.rows
      and last = List.nth r.rows (List.length r.rows - 1) in
      (* x = 0 kills nothing: no trial errors, no detours — though heavy
         mixed traffic may still be infeasible for every heuristic. *)
      check_float "healthy mesh never errors" 0. (best first).error_ratio;
      check_float "healthy mesh never detours" 0.
        (best first).mean_detour_hops;
      check_bool "kills do not help" true
        ((best last).failure_ratio >= (best first).failure_ratio);
      List.iter
        (fun (row : Harness.Runner.row) ->
          List.iter
            (fun (_, (s : Harness.Runner.stats)) ->
              check_bool "errors are failures" true
                (s.error_ratio <= s.failure_ratio +. 1e-9);
              check_bool "errors carry a message" true
                (s.error_ratio = 0. || s.error_example <> None))
            row.cells)
        r.rows

let rows_equal (a : Harness.Runner.result) (b : Harness.Runner.result) =
  List.length a.rows = List.length b.rows
  && List.for_all2
       (fun (ra : Harness.Runner.row) (rb : Harness.Runner.row) ->
         ra.x = rb.x && ra.cells = rb.cells)
       a.rows b.rows

let temp_checkpoint name =
  let path = Filename.concat (Filename.get_temp_dir_name ()) name in
  if Sys.file_exists path then Sys.remove path;
  path

let test_checkpoint_resume_bit_identical () =
  let path = temp_checkpoint "manroute_ckpt_full.tsv" in
  let fresh = Harness.Runner.run ~trials:5 ~seed:11 tiny_figure in
  let first = Harness.Runner.run ~trials:5 ~seed:11 ~checkpoint:path tiny_figure in
  check_bool "checkpointed run matches plain run" true (rows_equal fresh first);
  let resumed =
    Harness.Runner.run ~trials:5 ~seed:11 ~checkpoint:path tiny_figure
  in
  check_bool "fully resumed run bit-identical" true (rows_equal fresh resumed);
  Sys.remove path

let test_checkpoint_partial_resume () =
  let path = temp_checkpoint "manroute_ckpt_part.tsv" in
  let fresh = Harness.Runner.run ~trials:4 ~seed:13 tiny_figure in
  ignore (Harness.Runner.run ~trials:4 ~seed:13 ~checkpoint:path tiny_figure);
  (* Simulate a crash after the first row: keep it, then leave a torn
     half-written line with no newline, as a dying process would. *)
  let ic = open_in path in
  let first_line = input_line ic in
  close_in ic;
  let oc = open_out path in
  output_string oc (first_line ^ "\nrow\tv1\ttiny\t13\t4\t0x1p+");
  close_out oc;
  let resumed =
    Harness.Runner.run ~trials:4 ~seed:13 ~checkpoint:path tiny_figure
  in
  check_bool "partial resume bit-identical" true (rows_equal fresh resumed);
  (* The resumed run healed the sidecar: both rows load cleanly now. *)
  let key = { Harness.Checkpoint.figure_id = "tiny"; seed = 13; trials = 4 } in
  check_int "sidecar holds both rows" 2
    (List.length (Harness.Checkpoint.load ~path key));
  Sys.remove path

let test_checkpoint_key_mismatch_recomputes () =
  let path = temp_checkpoint "manroute_ckpt_key.tsv" in
  ignore (Harness.Runner.run ~trials:3 ~seed:17 ~checkpoint:path tiny_figure);
  (* A different trial count must not reuse these rows. *)
  let key3 = { Harness.Checkpoint.figure_id = "tiny"; seed = 17; trials = 3 }
  and key5 = { Harness.Checkpoint.figure_id = "tiny"; seed = 17; trials = 5 } in
  check_int "own key sees rows" 2 (List.length (Harness.Checkpoint.load ~path key3));
  check_int "other key sees none" 0 (List.length (Harness.Checkpoint.load ~path key5));
  let fresh5 = Harness.Runner.run ~trials:5 ~seed:17 tiny_figure in
  let via5 = Harness.Runner.run ~trials:5 ~seed:17 ~checkpoint:path tiny_figure in
  check_bool "recomputed, not reused" true (rows_equal fresh5 via5);
  Sys.remove path

let test_checkpoint_corrupt_lines_tolerated () =
  let path = temp_checkpoint "manroute_ckpt_bad.tsv" in
  let key = { Harness.Checkpoint.figure_id = "tiny"; seed = 1; trials = 2 } in
  let cell =
    {
      Harness.Checkpoint.name = "XY";
      failure_ratio = 0.5;
      error_ratio = 0.;
      norm_inv_power = 0.25;
      norm_stderr = 0.01;
      mean_power = None;
      mean_detour_hops = 0.;
      error_example = Some "multi\nline\tmessage";
      counters =
        {
          Routing.Metrics.paths_scored = 7;
          dp_cells = 42;
          bb_nodes = 0;
          detour_searches = 1;
          feasibility_checks = 3;
          delta_evals = 5;
          pf_iterations = 2;
          pf_rips = 4;
          recover_events = 3;
          recover_sheds = 1;
          recover_rung_max = 9;
        };
      mean_p50 = Some 12.5;
      mean_p95 = None;
      mean_slope = Some 0.75;
      front_ratio = Some 1.;
      srv_power = Some 4119.5;
      srv_saved = Some 0.41;
      srv_p95 = None;
    }
  in
  Harness.Checkpoint.append ~path key ~x:2. [ cell ];
  (* Foreign lines (other format, other version) and a torn final line
     are tolerated... *)
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  output_string oc "not a row at all\n";
  output_string oc "row\tv0\ttiny\t1\t2\t0x1p+1\t0\n";
  output_string oc "row\tv1\ttiny\t1\t2\t0x1p+";
  close_out oc;
  (match Harness.Checkpoint.load ~path key with
  | [ (x, [ c ]) ] ->
      check_float "x round-trips" 2. x;
      check_bool "cell round-trips, message included" true (c = cell)
  | rows ->
      Alcotest.failf "expected exactly the one good row, got %d"
        (List.length rows));
  (* ...but a key-matching row that fails to parse anywhere before the
     final line is real corruption: the typed error must localize it by
     sidecar path and line number instead of silently recomputing. *)
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  output_string oc "\nrow\tv1\ttiny\t1\t2\tnot-a-float\t1\tXY\n";
  output_string oc "trailing junk\n";
  close_out oc;
  (match Harness.Checkpoint.load ~path key with
  | _ -> Alcotest.fail "expected Corrupt"
  | exception Harness.Checkpoint.Corrupt { path = p; line; reason = _ } ->
      check_bool "corrupt path surfaced" true (p = path);
      check_int "corrupt line surfaced" 5 line;
      check_bool "printer names path and line" true
        (let m =
           Printexc.to_string
             (Harness.Checkpoint.Corrupt { path = p; line; reason = "r" })
         in
         contains_substring m path && contains_substring m "line 5"));
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Telemetry: env fallbacks, spans + trace files, counters, progress *)

(* Shared helper for the set-but-invalid environment fallbacks:
   MANROUTE_TRIALS and MANROUTE_JOBS must behave identically — warn on
   stderr (checked by eye; warn-once for jobs) and fall back, honor valid
   values. [Unix.putenv] cannot unset, so the empty string (also invalid)
   restores a variable that was absent. *)
let with_env var value f =
  let old = Sys.getenv_opt var in
  Unix.putenv var value;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv var (match old with Some v -> v | None -> ""))
    f

let check_env_int_fallback var read ~fallback =
  List.iter
    (fun bad ->
      with_env var bad (fun () ->
          check_int
            (Printf.sprintf "%s=%S falls back" var bad)
            fallback (read ())))
    [ "not-a-number"; "0"; "-4"; "2.5" ];
  with_env var "3" (fun () ->
      check_int (var ^ " valid value honored") 3 (read ()))

let test_env_trials_fallback () =
  check_env_int_fallback "MANROUTE_TRIALS" Harness.Runner.default_trials
    ~fallback:150

let test_env_jobs_fallback () =
  check_env_int_fallback "MANROUTE_JOBS" Harness.Pool.default_jobs
    ~fallback:(Domain.recommended_domain_count ())

let test_pool_tick_counts_completions () =
  let ticks = Atomic.make 0 in
  let a =
    Harness.Pool.map ~tick:(fun () -> Atomic.incr ticks) ~jobs:4 50 Fun.id
  in
  check_int "all results" 50 (Array.length a);
  check_int "one tick per index" 50 (Atomic.get ticks)

let temp_trace name =
  let path = Filename.concat (Filename.get_temp_dir_name ()) name in
  if Sys.file_exists path then Sys.remove path;
  path

let test_trace_spans_nest_and_validate () =
  let path = temp_trace "manroute_trace_ok.json" in
  let sink = Harness.Telemetry.create () in
  check_bool "disabled by default" false (Harness.Telemetry.enabled ());
  Harness.Telemetry.install sink;
  Fun.protect ~finally:Harness.Telemetry.uninstall @@ fun () ->
  check_bool "enabled once installed" true (Harness.Telemetry.enabled ());
  (* Nested spans from several domains, plus a routing-hook span. *)
  let v =
    Harness.Telemetry.span ~cat:"outer" "outer" (fun () ->
        ignore
          (Harness.Pool.map ~jobs:3 8 (fun i ->
               Harness.Telemetry.span ~cat:"inner"
                 ~args:[ ("i", string_of_int i) ]
                 "inner"
                 (fun () -> Routing.Metrics.with_span "hooked" (fun () -> i))));
        17)
  in
  check_int "span returns the value" 17 v;
  check_bool "events recorded" true (Harness.Telemetry.event_count sink >= 17);
  let n = Harness.Telemetry.write_file sink path in
  (match Harness.Telemetry.validate_file path with
  | Ok m -> check_int "validator counts every event" n m
  | Error e -> Alcotest.failf "trace rejected: %s" e);
  Sys.remove path

let test_trace_validator_rejects_garbage () =
  let reject name text =
    let path = temp_trace ("manroute_trace_bad_" ^ name ^ ".json") in
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    (match Harness.Telemetry.validate_file path with
    | Ok _ -> Alcotest.failf "%s should have been rejected" name
    | Error _ -> ());
    Sys.remove path
  in
  reject "not-json" "hello\n";
  reject "unbalanced" "[\n{\"name\":\"a\",\"ph\":\"X\"\n";
  reject "missing-ph" "[\n{\"name\":\"a\",\"ts\":1.0,\"dur\":2.0,\"tid\":0}\n]\n";
  (* Two same-thread spans that partially overlap cannot come from
     balanced instrumentation. *)
  reject "overlap"
    "[\n\
     {\"name\":\"a\",\"cat\":\"s\",\"ph\":\"X\",\"ts\":0.0,\"dur\":10.0,\"pid\":1,\"tid\":0},\n\
     {\"name\":\"b\",\"cat\":\"s\",\"ph\":\"X\",\"ts\":5.0,\"dur\":10.0,\"pid\":1,\"tid\":0}\n\
     ]\n"

let test_traced_campaign_matches_untraced () =
  (* Tracing must observe, never perturb: the same campaign with and
     without a sink yields bit-identical rows, and the trace holds the
     expected span hierarchy. *)
  let plain = Harness.Runner.run ~trials:4 ~seed:19 ~jobs:2 tiny_figure in
  let path = temp_trace "manroute_trace_campaign.json" in
  let traced =
    Harness.Telemetry.tracing (Some path) (fun () ->
        Harness.Runner.run ~trials:4 ~seed:19 ~jobs:2 tiny_figure)
  in
  check_bool "tracing does not change statistics" true
    (rows_equal plain traced);
  (match Harness.Telemetry.validate_file path with
  | Ok n ->
      (* 1 campaign + 2 rows + 8 trials + 48 heuristic + 48 evaluate
         spans at minimum. *)
      check_bool "all campaign spans present" true (n >= 107)
  | Error e -> Alcotest.failf "campaign trace rejected: %s" e);
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  List.iter
    (fun needle ->
      check_bool (needle ^ " span present") true
        (contains_substring text needle))
    [
      "\"campaign\""; "\"row\""; "\"trial\""; "\"heuristic\""; "\"evaluate\"";
      "\"XYI\"";
    ];
  Sys.remove path

let test_counters_deterministic_and_plausible () =
  let r1 = Harness.Runner.run ~trials:6 ~seed:23 ~jobs:1 tiny_figure in
  let r2 = Harness.Runner.run ~trials:6 ~seed:23 ~jobs:3 tiny_figure in
  List.iter2
    (fun (ra : Harness.Runner.row) (rb : Harness.Runner.row) ->
      List.iter2
        (fun (na, (sa : Harness.Runner.stats)) (_, (sb : Harness.Runner.stats)) ->
          check_bool (na ^ " counters jobs-invariant") true
            (Routing.Metrics.equal sa.counters sb.counters))
        ra.cells rb.cells)
    r1.rows r2.rows;
  List.iter
    (fun (row : Harness.Runner.row) ->
      let best = (List.assoc "BEST" row.cells).counters in
      List.iter
        (fun (name, (s : Harness.Runner.stats)) ->
          if name <> "BEST" then begin
            check_bool (name ^ " scored paths") true
              (s.counters.Routing.Metrics.paths_scored > 0);
            check_int (name ^ " one evaluation per trial") 6
              s.counters.Routing.Metrics.feasibility_checks;
            check_bool "BEST covers the whole trial" true
              (best.Routing.Metrics.paths_scored
              >= s.counters.Routing.Metrics.paths_scored)
          end)
        row.cells;
      check_bool "only PR expands DP cells" true
        ((List.assoc "PR" row.cells).counters.Routing.Metrics.dp_cells > 0
        && (List.assoc "XY" row.cells).counters.Routing.Metrics.dp_cells = 0))
    r1.rows

let test_checkpoint_backcompat_without_counters () =
  (* A v1 sidecar written before the counter fields must still resume:
     8-field cells load with all-zero counters. *)
  let path = temp_checkpoint "manroute_ckpt_legacy.tsv" in
  let oc = open_out path in
  output_string oc
    "row\tv1\ttiny\t1\t2\t0x1p+1\t1\tXY\t0x1p-1\t0x0p+0\t0x1p-2\t0x1p-7\t-\t0x0p+0\t-\n";
  close_out oc;
  let key = { Harness.Checkpoint.figure_id = "tiny"; seed = 1; trials = 2 } in
  (match Harness.Checkpoint.load ~path key with
  | [ (x, [ c ]) ] ->
      check_float "legacy x" 2. x;
      check_float "legacy stats survive" 0.25 c.norm_inv_power;
      check_bool "legacy counters read as zero" true
        (Routing.Metrics.is_zero c.counters)
  | rows -> Alcotest.failf "expected the legacy row, got %d" (List.length rows));
  Sys.remove path

let test_checkpoint_newer_version_fails_fast () =
  (* A key-matched row whose cells carry more fields than this build
     writes (28 > 26 here) was made by a newer manroute: silently
     misparsing it would quietly recompute rows the user thinks are
     checkpointed, so the loader must raise the typed error instead. *)
  let path = temp_checkpoint "manroute_ckpt_newer.tsv" in
  let oc = open_out path in
  output_string oc
    "row\tv1\ttiny\t1\t2\t0x1p+1\t1\tXY\t0x1p-1\t0x0p+0\t0x1p-2\t0x1p-7\t-\t0x0p+0\t-\t1\t2\t3\t4\t5\t6\t7\t8\t9\t10\t11\t12\t13\t14\t15\t16\t17\t18\t19\t20\n";
  close_out oc;
  let key = { Harness.Checkpoint.figure_id = "tiny"; seed = 1; trials = 2 } in
  (match Harness.Checkpoint.load ~path key with
  | _ -> Alcotest.fail "expected Newer_version"
  | exception Harness.Checkpoint.Newer_version { fields_per_cell; path = p; line }
    ->
      check_int "cell arity surfaced" 28 fields_per_cell;
      check_bool "offending path surfaced" true (p = path);
      check_int "offending line surfaced" 1 line;
      check_bool "printer names the remedy" true
        (contains_substring
           (Printexc.to_string
              (Harness.Checkpoint.Newer_version { path = p; line; fields_per_cell }))
           "newer manroute version"));
  (* The same row under a different campaign key is filtered out before
     the arity check: foreign sidecars never block an unrelated resume. *)
  let other = { Harness.Checkpoint.figure_id = "other"; seed = 1; trials = 2 } in
  check_bool "foreign keys skip the newer row" true
    (Harness.Checkpoint.load ~path other = []);
  Sys.remove path

(* Fabricated observations with hand-picked powers, runtimes and counters:
   the raw material for the merge-determinism property and the quantile
   check. *)
let fabricated_obs i p =
  let h = List.nth Routing.Heuristic.all (i mod 6) in
  let solution = Routing.Solution.make Harness.Figure.mesh [] in
  let report =
    {
      Routing.Evaluate.feasible = true;
      total_power = p;
      static_power = p /. 7.;
      dynamic_power = p -. (p /. 7.);
      active_links = 1;
      max_load = p;
      overloaded = [];
      detour_hops = 0;
    }
  in
  let outcome = { Routing.Best.heuristic = h; solution; report } in
  Harness.Summary.observation ~pareto:[] ~outcomes:[ outcome ]
    ~best:(Some outcome)
    ~times:[ (h.Routing.Heuristic.name, p /. 1000.) ]
    ~counters:
      [
        ( h.Routing.Heuristic.name,
          {
            Routing.Metrics.paths_scored = i + 1;
            dp_cells = 2 * i;
            bb_nodes = 0;
            detour_searches = i mod 3;
            feasibility_checks = 1;
            delta_evals = 4 * i;
            pf_iterations = i mod 2;
            pf_rips = 3 * i;
            recover_events = i mod 5;
            recover_sheds = i mod 4;
            recover_rung_max = 5 * i;
          } );
      ]

let finalized_equal (a : Harness.Summary.t) (b : Harness.Summary.t) =
  (* Bit-equality on every float, structural on the counter blocks;
     [static_fraction] needs NaN-tolerant comparison. *)
  a.instances = b.instances
  && a.success_ratio = b.success_ratio
  && a.mean_inverse_power = b.mean_inverse_power
  && a.inverse_power_vs_xy = b.inverse_power_vs_xy
  && a.mean_runtime_ms = b.mean_runtime_ms
  && a.runtime_quantiles_ms = b.runtime_quantiles_ms
  && a.counters = b.counters
  && (a.static_fraction = b.static_fraction
     || (Float.is_nan a.static_fraction && Float.is_nan b.static_fraction))

let prop_summary_merge_bit_stable =
  QCheck.Test.make ~name:"sharded merge bit-matches sequential fold" ~count:60
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 1 40) (float_range 0.1 5000.))
           (int_range 0 40)))
    (fun (powers, cut) ->
      let obs = List.mapi fabricated_obs powers in
      let cut = min cut (List.length obs) in
      (* Sequential reference: one accumulator, fed in order. *)
      let seq = Harness.Summary.create () in
      List.iter (Harness.Summary.add seq) obs;
      (* Sharded: two worker accumulators, merged in shard order into a
         fresh one — the documented deterministic fold. *)
      let shard0 = Harness.Summary.create ()
      and shard1 = Harness.Summary.create ()
      and merged = Harness.Summary.create () in
      List.iteri
        (fun i o ->
          Harness.Summary.add (if i < cut then shard0 else shard1) o)
        obs;
      Harness.Summary.merge ~into:merged shard0;
      Harness.Summary.merge ~into:merged shard1;
      finalized_equal
        (Harness.Summary.finalize seq)
        (Harness.Summary.finalize merged))

let test_summary_quantiles_exact () =
  (* Ten runtimes 1..10 ms on one heuristic: nearest-rank p50 is the 5th
     value, p95 the 10th. *)
  let acc = Harness.Summary.create () in
  (* [fabricated_obs] records p/1000 seconds, i.e. p milliseconds. *)
  List.iter
    (fun ms -> Harness.Summary.add acc (fabricated_obs 0 ms))
    [ 7.; 2.; 9.; 4.; 1.; 10.; 3.; 8.; 5.; 6. ];
  let s = Harness.Summary.finalize acc in
  match s.Harness.Summary.runtime_quantiles_ms with
  | [ (_, (p50, p95)) ] ->
      check_float "p50 exact" 5. p50;
      check_float "p95 exact" 10. p95
  | q -> Alcotest.failf "expected one quantile entry, got %d" (List.length q)

let test_progress_line_accounting () =
  let dev_null = open_out (if Sys.win32 then "NUL" else "/dev/null") in
  let p =
    Harness.Telemetry.Progress.create ~out:dev_null ~label:"tiny" ~rows:2
      ~total:20 ()
  in
  (* Exercised from several domains like the real campaign does. *)
  ignore
    (Harness.Pool.map
       ~tick:(fun () -> Harness.Telemetry.Progress.tick p)
       ~jobs:3 10 Fun.id);
  Harness.Telemetry.Progress.row p;
  Harness.Telemetry.Progress.error p;
  Harness.Telemetry.Progress.advance p 10;
  Harness.Telemetry.Progress.row p;
  Harness.Telemetry.Progress.finish p;
  close_out dev_null;
  (* Flag wiring: CLI wins, else the environment decides. *)
  check_bool "cli flag enables" true
    (Harness.Telemetry.progress_enabled ~cli:true ());
  with_env "MANROUTE_PROGRESS" "1" (fun () ->
      check_bool "env enables" true (Harness.Telemetry.progress_enabled ()));
  with_env "MANROUTE_PROGRESS" "0" (fun () ->
      check_bool "env zero disables" false
        (Harness.Telemetry.progress_enabled ()))

let test_progress_resumed_only_line () =
  (* A campaign that resumed every completed trial so far has no live
     rate to divide by: the line must say so instead of printing an
     inf/nan ETA. *)
  let path = Filename.temp_file "manroute-progress" ".txt" in
  let out = open_out path in
  let p =
    Harness.Telemetry.Progress.create ~out ~label:"resumed" ~rows:2 ~total:20
      ()
  in
  Harness.Telemetry.Progress.advance p 10;
  close_out out;
  let painted =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove path;
  check_bool "paints the resumed marker" true
    (contains_substring painted "resumed (no live rate yet)");
  check_bool "no inf/nan ETA" true
    (not
       (contains_substring painted "inf" || contains_substring painted "nan"))

let test_exposed_quantiles_match_rule () =
  (* The exported helper follows the same nearest-rank rule as the
     runtime quantiles, over a copy (input untouched), (0,0) on empty. *)
  let values = [| 7.; 2.; 9.; 4.; 1.; 10.; 3.; 8.; 5.; 6. |] in
  let copy = Array.copy values in
  let p50, p95 = Harness.Summary.quantiles values in
  check_float "p50 exact" 5. p50;
  check_float "p95 exact" 10. p95;
  check_bool "input not mutated" true (values = copy);
  let z50, z95 = Harness.Summary.quantiles [||] in
  check_float "empty p50" 0. z50;
  check_float "empty p95" 0. z95

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "harness"
    [
      ( "figures",
        [
          quick "registered" test_figures_registered;
          quick "generators obey specs" test_generators_obey_specs;
        ] );
      ( "runner",
        [
          quick "bookkeeping" test_runner_bookkeeping;
          quick "deterministic" test_runner_deterministic;
          quick "jobs invariant" test_runner_jobs_invariant;
        ] );
      ( "pool",
        [
          quick "map orders results" test_pool_map_orders_results;
          quick "map propagates exceptions" test_pool_map_propagates_exceptions;
          quick "summary merge" test_summary_merge_matches_sequential;
          quick "tick counts completions" test_pool_tick_counts_completions;
        ] );
      ( "telemetry",
        [
          quick "env trials fallback" test_env_trials_fallback;
          quick "env jobs fallback" test_env_jobs_fallback;
          quick "spans nest and validate" test_trace_spans_nest_and_validate;
          quick "validator rejects garbage" test_trace_validator_rejects_garbage;
          quick "traced campaign matches untraced"
            test_traced_campaign_matches_untraced;
          quick "counters deterministic" test_counters_deterministic_and_plausible;
          quick "checkpoint back-compat" test_checkpoint_backcompat_without_counters;
          quick "checkpoint newer-version fail-fast" test_checkpoint_newer_version_fails_fast;
          quick "quantiles exact" test_summary_quantiles_exact;
          quick "exposed quantiles follow the rule"
            test_exposed_quantiles_match_rule;
          quick "progress accounting" test_progress_line_accounting;
          quick "progress resumed-only line" test_progress_resumed_only_line;
          QCheck_alcotest.to_alcotest prop_summary_merge_bit_stable;
        ] );
      ( "render",
        [
          quick "csv shape" test_csv_shape;
          quick "write csv" test_write_csv;
          quick "pp result smoke" test_pp_result_smoke;
          quick "summary pp smoke" test_summary_pp_smoke;
          quick "stderr sane" test_stderr_sane;
        ] );
      ("summary", [ quick "ratios" test_summary_ratios ]);
      ( "heatmap",
        [
          quick "shape and symbols" test_heatmap_shape_and_symbols;
          quick "busier direction" test_heatmap_uses_busier_direction;
          quick "single row" test_heatmap_single_row;
        ] );
      ( "problem",
        [
          quick "roundtrip" test_problem_roundtrip;
          quick "comments and blanks" test_problem_comments_and_blanks;
          quick "errors" test_problem_errors;
        ] );
      ( "crash safety",
        [
          quick "isolates heuristic errors" test_runner_isolates_heuristic_errors;
          quick "fault figure campaign" test_fault_figure_campaign;
          quick "checkpoint full resume" test_checkpoint_resume_bit_identical;
          quick "checkpoint partial resume" test_checkpoint_partial_resume;
          quick "checkpoint key mismatch" test_checkpoint_key_mismatch_recomputes;
          quick "checkpoint corrupt lines" test_checkpoint_corrupt_lines_tolerated;
        ] );
    ]
